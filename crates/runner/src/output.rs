//! Crash-safe file output and stable hashing.
//!
//! Every file the runner produces — `results/*.txt`, the resume
//! manifest, `summary.json` — goes through [`atomic_write`]: the bytes
//! land in a temporary file in the destination directory, are fsynced,
//! and are renamed over the target in one step, so a process killed at
//! any instant leaves either the old complete file or the new complete
//! file, never a truncated hybrid. The append-only journal is the one
//! exception (see [`crate::journal`]); it is designed to tolerate a
//! torn tail instead.

use std::fs::{self, File, OpenOptions};
use std::io::{self};
use std::path::{Path, PathBuf};

use crate::chaos::{self, Site};
use crate::error::RunnerError;

/// Writes `bytes` to `path` atomically: temp file in the same
/// directory, fsync, rename over the destination, fsync the directory.
///
/// A crash mid-write leaves the previous contents of `path` (or no
/// file) intact; readers never observe a truncated file.
///
/// Every step is a [`chaos`] fail-point (temp create,
/// write, fsync, rename, directory fsync), so the crash-point recovery
/// tests can kill a publish at any instant and prove the
/// old-or-new-never-torn guarantee holds.
///
/// # Errors
///
/// Any I/O error creating, writing, syncing, or renaming the temp file.
/// (A failure to fsync the *directory* is ignored: some filesystems
/// refuse directory handles, and the rename itself is already durable
/// on the journaled filesystems we care about. A simulated-kill
/// "failure" there is the one exception — a dead process cannot shrug
/// anything off, so it propagates.)
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "atomic_write: no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = match dir {
        Some(d) => d.join(format!(".{file_name}.tmp.{}", std::process::id())),
        None => Path::new(&format!(".{file_name}.tmp.{}", std::process::id())).to_path_buf(),
    };
    let result = (|| {
        let mut f = chaos::create(Site::PublishTmpCreate, || {
            OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)
        })?;
        chaos::write_all(Site::PublishTmpWrite, &mut f, bytes)?;
        chaos::sync_all(Site::PublishTmpSync, &f)?;
        chaos::rename(Site::PublishRename, &tmp, path)?;
        if let Some(d) = dir {
            // Make the rename itself durable; tolerated failure (see
            // above) — except a simulated kill, which must take the
            // run down like any other crash point.
            if let Ok(dh) = File::open(d) {
                if let Err(e) = chaos::sync_all(Site::PublishDirSync, &dh) {
                    if chaos::is_sim_kill(&e) {
                        return Err(e);
                    }
                }
            }
        }
        Ok(())
    })();
    if let Err(e) = &result {
        // A real failure cleans up its temp file; a simulated kill does
        // not — a dead process leaves litter, which is exactly what
        // `clean_stale_tmp` sweeps on the next start.
        if !chaos::is_sim_kill(e) {
            let _ = fs::remove_file(&tmp);
        }
    }
    result
}

/// Lists a directory's entries, salvaging what it can.
///
/// # Errors
///
/// [`RunnerError::DirScan`] if the directory cannot be opened
/// (`salvaged` empty) or an entry fails mid-iteration (`salvaged`
/// holds every entry read before the failure) — callers that can
/// tolerate a truncated listing recover it with
/// [`RunnerError::into_salvaged`].
pub fn scan_dir(dir: &Path) -> Result<Vec<PathBuf>, RunnerError> {
    let iter = fs::read_dir(dir).map_err(|source| RunnerError::DirScan {
        dir: dir.to_path_buf(),
        salvaged: Vec::new(),
        source,
    })?;
    let mut entries = Vec::new();
    for entry in iter {
        match entry {
            Ok(e) => entries.push(e.path()),
            Err(source) => {
                return Err(RunnerError::DirScan {
                    dir: dir.to_path_buf(),
                    salvaged: entries,
                    source,
                })
            }
        }
    }
    Ok(entries)
}

/// Sweeps `.{name}.tmp.{pid}` litter that a hard kill mid-
/// [`atomic_write`] can leave behind (the normal error path cleans up
/// after itself; SIGKILL cannot).
///
/// Returns the removed paths plus the scan error, if the listing was
/// truncated — the sweep proceeds over whatever entries were salvaged,
/// and a file that refuses to be removed is skipped rather than fatal
/// (the next sweep gets another chance).
pub fn clean_stale_tmp(dir: &Path) -> (Vec<PathBuf>, Option<RunnerError>) {
    let (entries, err) = match scan_dir(dir) {
        Ok(v) => (v, None),
        Err(e) => match &e {
            RunnerError::DirScan { salvaged, .. } => (salvaged.clone(), Some(e)),
        },
    };
    let mut removed = Vec::new();
    for path in entries {
        let is_tmp = path
            .file_name()
            .map(|n| n.to_string_lossy())
            .is_some_and(|n| n.starts_with('.') && n.contains(".tmp."));
        if is_tmp && fs::remove_file(&path).is_ok() {
            removed.push(path);
        }
    }
    (removed, err)
}

/// 64-bit FNV-1a over a byte string — the runner's stable fingerprint
/// function (journal output hashes, registry/config fingerprints).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// [`fnv1a64`] over a string's UTF-8 bytes.
#[must_use]
pub fn hash_str(s: &str) -> u64 {
    fnv1a64(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::TempDir;

    #[test]
    fn atomic_write_round_trips_and_replaces() {
        let dir = TempDir::new("atomic_write");
        let path = dir.path().join("out.txt");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer contents");
        // No temp litter left behind.
        let leftovers: Vec<_> = scan_dir(dir.path())
            .unwrap()
            .into_iter()
            .filter(|p| p.to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
    }

    #[test]
    fn scan_dir_lists_entries_and_reports_missing_dirs() {
        let dir = TempDir::new("scan_dir");
        atomic_write(&dir.path().join("a.txt"), b"a").unwrap();
        atomic_write(&dir.path().join("b.txt"), b"b").unwrap();
        let mut names: Vec<_> = scan_dir(dir.path())
            .unwrap()
            .into_iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names, ["a.txt", "b.txt"]);

        let err = scan_dir(&dir.path().join("no_such_subdir")).unwrap_err();
        assert!(err.to_string().contains("after 0 entries"), "{err}");
        assert!(err.into_salvaged().is_empty());
    }

    #[test]
    fn clean_stale_tmp_sweeps_only_temp_litter() {
        let dir = TempDir::new("clean_stale_tmp");
        atomic_write(&dir.path().join("keep.txt"), b"keep").unwrap();
        // Simulated crash debris from two different pids.
        fs::write(dir.path().join(".out.txt.tmp.1234"), b"torn").unwrap();
        fs::write(dir.path().join(".sum.json.tmp.99"), b"torn").unwrap();
        let (removed, err) = clean_stale_tmp(dir.path());
        assert!(err.is_none());
        assert_eq!(removed.len(), 2, "removed: {removed:?}");
        assert!(dir.path().join("keep.txt").exists());
        assert!(!dir.path().join(".out.txt.tmp.1234").exists());

        // A missing directory degrades to an error + empty sweep, not a
        // panic.
        let (removed, err) = clean_stale_tmp(&dir.path().join("gone"));
        assert!(removed.is_empty());
        assert!(err.is_some());
    }

    #[test]
    fn fnv_is_stable_and_discriminating() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(hash_str("fig5"), hash_str("fig6"));
        assert_eq!(hash_str("fig5"), hash_str("fig5"));
    }
}
