//! Structured runner errors.
//!
//! The orchestration layer mostly speaks `io::Error` (file I/O) and
//! [`crate::orchestrator::SuiteError`] (suite-level refusals). This
//! module covers the gap in between: filesystem operations that can
//! fail *partway* and where the partial result is still worth
//! returning. The canonical case is a directory scan — `read_dir`
//! yields entries one at a time, and an entry-level failure (an NFS
//! hiccup, a file deleted mid-iteration on some platforms) used to
//! abort the whole scan via `unwrap`. [`RunnerError::DirScan`] instead
//! carries both the underlying error and every entry read before it,
//! so callers can degrade to the salvaged listing instead of crashing.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// A structured, partially-recoverable runner error.
#[derive(Debug)]
pub enum RunnerError {
    /// A directory scan failed — either opening the directory (then
    /// `salvaged` is empty) or reading an entry mid-iteration (then
    /// `salvaged` holds every entry read before the failure, and the
    /// caller may choose to proceed with the truncated listing).
    DirScan {
        /// The directory being scanned.
        dir: PathBuf,
        /// Entries successfully read before the failure.
        salvaged: Vec<PathBuf>,
        /// The underlying I/O error.
        source: io::Error,
    },
}

impl RunnerError {
    /// Consumes the error, yielding whatever entries were salvaged
    /// before the failure (empty if nothing was).
    #[must_use]
    pub fn into_salvaged(self) -> Vec<PathBuf> {
        match self {
            RunnerError::DirScan { salvaged, .. } => salvaged,
        }
    }
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::DirScan {
                dir,
                salvaged,
                source,
            } => write!(
                f,
                "directory scan of {} failed after {} entries: {source}",
                dir.display(),
                salvaged.len()
            ),
        }
    }
}

impl std::error::Error for RunnerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunnerError::DirScan { source, .. } => Some(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn dir_scan_reports_salvage_count_and_source() {
        let err = RunnerError::DirScan {
            dir: PathBuf::from("/nowhere/results"),
            salvaged: vec![PathBuf::from("a.txt"), PathBuf::from("b.txt")],
            source: io::Error::other("stale NFS handle"),
        };
        let msg = err.to_string();
        assert!(msg.contains("/nowhere/results"), "{msg}");
        assert!(msg.contains("after 2 entries"), "{msg}");
        assert!(err.source().is_some());
        assert_eq!(
            err.into_salvaged(),
            vec![PathBuf::from("a.txt"), PathBuf::from("b.txt")]
        );
    }
}
