//! The crash-safe run journal and resume manifest.
//!
//! Two small files under the results directory make `runall --resume`
//! possible:
//!
//! * **Manifest** (`.runall.manifest`) — written atomically once at
//!   suite start; records the profile, the suite seed, and the
//!   [`Registry::run_hash`](crate::Registry::run_hash) of the selected
//!   experiments. A resume whose manifest does not match byte-for-byte
//!   semantics (same profile, seed, and hash) is refused: the journal
//!   would describe a different run.
//! * **Journal** (`.runall.journal`) — append-only, one line per
//!   finished experiment, fsynced after every append. A process killed
//!   mid-append leaves at most one torn final line, which the loader
//!   tolerates (the paired experiment simply re-runs); a malformed line
//!   anywhere *else* means real corruption and is reported as an error.
//!
//! The formats are deliberately line-oriented plain text: no parser
//! dependencies, trivially inspectable, and the torn-tail recovery rule
//! is obvious.
//!
//! Every write, fsync, and truncate in this module is routed through
//! the [`chaos`] fail-point layer, so the crash-point
//! recovery tests can kill the process between any two of them and
//! prove that [`Journal::recover`] + re-run reproduce an uninterrupted
//! run byte for byte. With no chaos plan installed the wrappers are
//! plain pass-throughs.

use std::fmt::Write as _;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read};
use std::path::{Path, PathBuf};

use crate::chaos::{self, Site};
use crate::experiment::Profile;
use crate::output::atomic_write;

const JOURNAL_MAGIC: &str = "pandora-journal v1";
const MANIFEST_MAGIC: &str = "pandora-manifest v1";

/// One completed experiment, as recorded in the journal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JournalEntry {
    /// Experiment name (a whitespace-free token).
    pub name: String,
    /// Final status keyword (`ok`, `partial`, `failed`).
    pub status: String,
    /// Wall time of the recorded run, milliseconds.
    pub wall_ms: u64,
    /// Retries consumed (0 = first attempt succeeded).
    pub retries: u32,
    /// FNV-1a of the experiment's full text output.
    pub output_hash: u64,
    /// Length of the output in bytes (a second torn-write tripwire).
    pub output_bytes: u64,
}

impl JournalEntry {
    fn to_line(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "done {} {} {} {} {:#018x} {}",
            self.name, self.status, self.wall_ms, self.retries, self.output_hash, self.output_bytes
        );
        s
    }

    fn parse(line: &str) -> Option<JournalEntry> {
        let mut it = line.split_ascii_whitespace();
        if it.next()? != "done" {
            return None;
        }
        let name = it.next()?.to_string();
        let status = it.next()?.to_string();
        let wall_ms = it.next()?.parse().ok()?;
        let retries = it.next()?.parse().ok()?;
        let output_hash = parse_hex(it.next()?)?;
        let output_bytes = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        Some(JournalEntry {
            name,
            status,
            wall_ms,
            retries,
            output_hash,
            output_bytes,
        })
    }
}

fn parse_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

/// An open, append-mode journal. Every [`Journal::append`] is flushed
/// and fsynced before returning: once the orchestrator reports an
/// experiment complete, a crash cannot un-record it.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Creates (truncating any previous journal) and syncs a fresh
    /// journal at `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or syncing the file.
    pub fn create(path: &Path) -> io::Result<Journal> {
        let mut file = chaos::create(Site::JournalCreate, || {
            OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)
        })?;
        let header = format!("{JOURNAL_MAGIC}\n");
        chaos::write_all(Site::JournalHeaderWrite, &mut file, header.as_bytes())?;
        chaos::sync_all(Site::JournalHeaderSync, &file)?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Reopens an existing journal for appending (resume).
    ///
    /// # Errors
    ///
    /// Any I/O error opening the file.
    pub fn open_append(path: &Path) -> io::Result<Journal> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// The journal's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one entry and fsyncs.
    ///
    /// # Errors
    ///
    /// Any I/O error writing or syncing; also if `entry.name` or
    /// `entry.status` is not a single whitespace-free token (that would
    /// corrupt the line format).
    pub fn append(&mut self, entry: &JournalEntry) -> io::Result<()> {
        for token in [&entry.name, &entry.status] {
            if token.is_empty() || token.contains(char::is_whitespace) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("journal token {token:?} must be whitespace-free"),
                ));
            }
        }
        let mut line = entry.to_line();
        line.push('\n');
        chaos::write_all(Site::JournalAppendWrite, &mut self.file, line.as_bytes())?;
        chaos::sync_data(Site::JournalAppendSync, &self.file)?;
        Ok(())
    }

    /// Loads a journal, tolerating a torn tail: a final line that is
    /// incomplete (no trailing newline) or unparsable is dropped — it
    /// is exactly what a mid-append crash leaves behind.
    ///
    /// # Errors
    ///
    /// I/O errors reading the file; [`io::ErrorKind::InvalidData`] if
    /// the magic header is wrong or a *non-final* line is malformed
    /// (that is corruption, not a crash artifact).
    pub fn load(path: &Path) -> io::Result<Vec<JournalEntry>> {
        let mut text = String::new();
        File::open(path)?.read_to_string(&mut text)?;
        let complete = match text.rfind('\n') {
            // Anything after the last newline is a torn tail; drop it.
            Some(end) => &text[..end],
            None => "",
        };
        let mut lines = complete.lines();
        match lines.next() {
            Some(l) if l == JOURNAL_MAGIC => {}
            // An empty or headerless file: a crash before the header
            // sync — treat as an empty journal only if truly empty.
            None => return Ok(Vec::new()),
            Some(other) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("not a pandora journal (header {other:?})"),
                ));
            }
        }
        let rest: Vec<&str> = lines.collect();
        let mut entries = Vec::new();
        for (i, line) in rest.iter().enumerate() {
            match JournalEntry::parse(line) {
                Some(e) => entries.push(e),
                None if i + 1 == rest.len() => {
                    // Torn final line (crash mid-append after an earlier
                    // newline made it to disk): tolerated.
                }
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt journal line {}: {line:?}", i + 2),
                    ));
                }
            }
        }
        Ok(entries)
    }

    /// Loads a journal *and* reopens it for appending, first truncating
    /// any torn tail a crash left behind. This is the resume entry
    /// point: plain [`Journal::open_append`] after a torn tail would
    /// glue the next entry onto the unterminated fragment, corrupting
    /// the line that follows — recovery instead rewinds the file to the
    /// end of its last valid line. A journal whose header never made it
    /// to disk (crash before the header sync) is recreated from
    /// scratch; so is a missing file.
    ///
    /// The truncation is itself a routed fail-point
    /// ([`Site::JournalRecoverTruncate`]), so crash-on-recover is part
    /// of the crash-point matrix.
    ///
    /// # Errors
    ///
    /// I/O errors reading, truncating, or reopening;
    /// [`io::ErrorKind::InvalidData`] on mid-file corruption, with the
    /// same tail-only tolerance as [`Journal::load`].
    pub fn recover(path: &Path) -> io::Result<(Vec<JournalEntry>, Journal)> {
        let mut text = String::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_string(&mut text)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }

        // Scan the valid prefix: header line, then parsable entry lines.
        let mut valid_len = 0usize;
        let mut entries = Vec::new();
        let header = format!("{JOURNAL_MAGIC}\n");
        if text.starts_with(&header) {
            valid_len = header.len();
            loop {
                let rest = &text[valid_len..];
                let Some(nl) = rest.find('\n') else { break };
                match JournalEntry::parse(&rest[..nl]) {
                    Some(e) => {
                        entries.push(e);
                        valid_len += nl + 1;
                    }
                    None if rest[nl + 1..].contains('\n') => {
                        // Malformed line with more complete lines after
                        // it: corruption, not a crash artifact.
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("corrupt journal line: {:?}", &rest[..nl]),
                        ));
                    }
                    // Torn tail (with or without its newline): rewind.
                    None => break,
                }
            }
        } else if text.starts_with(JOURNAL_MAGIC) || header.starts_with(&text) {
            // A torn header (prefix of the magic, or magic without its
            // newline): the create never completed — start over.
        } else if !text.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "not a pandora journal (header {:?})",
                    text.lines().next().unwrap_or("")
                ),
            ));
        }

        if valid_len == 0 {
            // Missing, empty, or headerless: recreate from scratch.
            let journal = Journal::create(path)?;
            return Ok((Vec::new(), journal));
        }
        if valid_len < text.len() {
            let f = OpenOptions::new().write(true).open(path)?;
            chaos::set_len(Site::JournalRecoverTruncate, &f, valid_len as u64)?;
            // Durability of the truncate is best-effort: if it is lost,
            // the next recovery simply truncates again.
            let _ = f.sync_data();
        }
        let journal = Journal::open_append(path)?;
        Ok((entries, journal))
    }
}

/// The resume manifest: the identity of a run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Manifest {
    /// Profile of the recorded run.
    pub profile: Profile,
    /// Suite seed of the recorded run.
    pub seed: u64,
    /// [`Registry::run_hash`](crate::Registry::run_hash) over the
    /// selected experiments.
    pub run_hash: u64,
}

impl Manifest {
    /// Serializes and writes the manifest atomically.
    ///
    /// # Errors
    ///
    /// Any I/O error from [`atomic_write`].
    pub fn write(&self, path: &Path) -> io::Result<()> {
        let text = format!(
            "{MANIFEST_MAGIC}\nprofile {}\nseed {:#018x}\nrun_hash {:#018x}\n",
            self.profile.as_str(),
            self.seed,
            self.run_hash
        );
        atomic_write(path, text.as_bytes())
    }

    /// Loads a manifest.
    ///
    /// # Errors
    ///
    /// I/O errors reading; [`io::ErrorKind::InvalidData`] on a bad
    /// header or malformed fields. (The manifest is written atomically,
    /// so unlike the journal no torn state is tolerated.)
    pub fn load(path: &Path) -> io::Result<Manifest> {
        let text = fs::read_to_string(path)?;
        let bad = |why: String| io::Error::new(io::ErrorKind::InvalidData, why);
        let mut lines = text.lines();
        match lines.next() {
            Some(MANIFEST_MAGIC) => {}
            other => return Err(bad(format!("not a pandora manifest (header {other:?})"))),
        }
        let mut profile = None;
        let mut seed = None;
        let mut run_hash = None;
        for line in lines {
            match line.split_once(' ') {
                Some(("profile", "full")) => profile = Some(Profile::Full),
                Some(("profile", "smoke")) => profile = Some(Profile::Smoke),
                Some(("seed", v)) => seed = parse_hex(v),
                Some(("run_hash", v)) => run_hash = parse_hex(v),
                _ => return Err(bad(format!("malformed manifest line {line:?}"))),
            }
        }
        match (profile, seed, run_hash) {
            (Some(profile), Some(seed), Some(run_hash)) => Ok(Manifest {
                profile,
                seed,
                run_hash,
            }),
            _ => Err(bad("manifest missing fields".to_string())),
        }
    }

    /// Checks that a resumed run matches this recorded manifest.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first mismatch.
    pub fn check_matches(&self, current: &Manifest) -> Result<(), String> {
        if self.profile != current.profile {
            return Err(format!(
                "profile changed: journal recorded {}, this run is {}",
                self.profile.as_str(),
                current.profile.as_str()
            ));
        }
        if self.seed != current.seed {
            return Err(format!(
                "seed changed: journal recorded {:#x}, this run uses {:#x}",
                self.seed, current.seed
            ));
        }
        if self.run_hash != current.run_hash {
            return Err(format!(
                "registry/config hash changed: journal recorded {:#x}, this run is {:#x} \
                 (experiment set, per-experiment config, or selection differs)",
                self.run_hash, current.run_hash
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::TempDir;
    use std::io::Write;

    fn entry(name: &str, status: &str) -> JournalEntry {
        JournalEntry {
            name: name.to_string(),
            status: status.to_string(),
            wall_ms: 1234,
            retries: 1,
            output_hash: 0xdead_beef_cafe_f00d,
            output_bytes: 4096,
        }
    }

    #[test]
    fn journal_round_trip() {
        let dir = TempDir::new("journal_rt");
        let path = dir.path().join("j");
        let mut j = Journal::create(&path).unwrap();
        j.append(&entry("fig5_amplification", "ok")).unwrap();
        j.append(&entry("fig6_bsaes_hist", "partial")).unwrap();
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(
            loaded,
            vec![entry("fig5_amplification", "ok"), entry("fig6_bsaes_hist", "partial")]
        );
    }

    #[test]
    fn torn_tail_is_tolerated_but_mid_file_corruption_is_not() {
        let dir = TempDir::new("journal_tail");
        let path = dir.path().join("j");
        let mut j = Journal::create(&path).unwrap();
        j.append(&entry("a", "ok")).unwrap();
        drop(j);
        // Simulate a crash mid-append: a torn final line without '\n'.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"done b ok 12").unwrap();
        drop(f);
        assert_eq!(Journal::load(&path).unwrap(), vec![entry("a", "ok")]);

        // A torn *complete-looking* line (newline made it, fields did
        // not) is also only tolerated at the tail...
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"\n").unwrap();
        drop(f);
        assert_eq!(Journal::load(&path).unwrap(), vec![entry("a", "ok")]);

        // ...but garbage *before* valid entries is corruption.
        let text = fs::read_to_string(&path).unwrap();
        let rebuilt = text.replace("done a ok", "dxne a ok");
        fs::write(&path, rebuilt).unwrap();
        let err = Journal::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn recover_truncates_torn_tail_then_appends_cleanly() {
        let dir = TempDir::new("journal_recover");
        let path = dir.path().join("j");
        let mut j = Journal::create(&path).unwrap();
        j.append(&entry("a", "ok")).unwrap();
        drop(j);
        // Crash mid-append: unterminated fragment at the tail.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"done b ok 12").unwrap();
        drop(f);

        let (entries, mut j) = Journal::recover(&path).unwrap();
        assert_eq!(entries, vec![entry("a", "ok")]);
        // The fragment is gone from disk, so this append lands on a
        // fresh line (plain open_append would have glued it onto the
        // fragment and corrupted the journal for the *next* resume).
        j.append(&entry("b", "ok")).unwrap();
        drop(j);
        assert_eq!(
            Journal::load(&path).unwrap(),
            vec![entry("a", "ok"), entry("b", "ok")]
        );
        let (entries, _j) = Journal::recover(&path).unwrap();
        assert_eq!(entries, vec![entry("a", "ok"), entry("b", "ok")]);
    }

    #[test]
    fn recover_recreates_missing_or_headerless_journals() {
        let dir = TempDir::new("journal_recover_fresh");

        // Missing file.
        let path = dir.path().join("missing");
        let (entries, mut j) = Journal::recover(&path).unwrap();
        assert!(entries.is_empty());
        j.append(&entry("a", "ok")).unwrap();
        assert_eq!(Journal::load(&path).unwrap(), vec![entry("a", "ok")]);

        // Torn header: a prefix of the magic, no newline yet.
        let path = dir.path().join("torn_header");
        fs::write(&path, &JOURNAL_MAGIC.as_bytes()[..7]).unwrap();
        let (entries, mut j) = Journal::recover(&path).unwrap();
        assert!(entries.is_empty());
        j.append(&entry("b", "ok")).unwrap();
        assert_eq!(Journal::load(&path).unwrap(), vec![entry("b", "ok")]);
    }

    #[test]
    fn recover_rejects_mid_file_corruption_and_foreign_files() {
        let dir = TempDir::new("journal_recover_bad");
        let path = dir.path().join("j");
        let mut j = Journal::create(&path).unwrap();
        j.append(&entry("a", "ok")).unwrap();
        j.append(&entry("b", "ok")).unwrap();
        drop(j);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("done a ok", "dxne a ok")).unwrap();
        let err = Journal::recover(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let path = dir.path().join("foreign");
        fs::write(&path, "some other format\nentirely\n").unwrap();
        let err = Journal::recover(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn append_rejects_tokens_with_whitespace() {
        let dir = TempDir::new("journal_tok");
        let mut j = Journal::create(&dir.path().join("j")).unwrap();
        let mut e = entry("a", "ok");
        e.name = "two words".to_string();
        assert!(j.append(&e).is_err());
    }

    #[test]
    fn manifest_round_trip_and_mismatches() {
        let dir = TempDir::new("manifest");
        let path = dir.path().join("m");
        let m = Manifest {
            profile: Profile::Smoke,
            seed: 42,
            run_hash: 0x1111_2222_3333_4444,
        };
        m.write(&path).unwrap();
        let loaded = Manifest::load(&path).unwrap();
        assert_eq!(loaded, m);
        assert!(loaded.check_matches(&m).is_ok());

        let mut other = m.clone();
        other.seed = 43;
        assert!(loaded.check_matches(&other).unwrap_err().contains("seed"));
        other = m.clone();
        other.profile = Profile::Full;
        assert!(loaded.check_matches(&other).unwrap_err().contains("profile"));
        other = m.clone();
        other.run_hash ^= 1;
        assert!(loaded.check_matches(&other).unwrap_err().contains("hash"));
    }
}
