//! The unit of orchestration: a named, profiled, deadline-bounded
//! [`Experiment`], and the [`Ctx`] handle its body writes results
//! through.
//!
//! Experiment bodies never print to stdout and never touch the
//! filesystem: all output goes through [`Ctx`] into an in-memory
//! report that the caller (the `runall` orchestrator or a standalone
//! bench bin) publishes atomically. Because the buffer lives behind an
//! [`Arc`], whatever an experiment wrote before a panic or a deadline
//! overrun is still available to be recorded as a partial result.

use std::fmt::{self, Display};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Which variant of an experiment to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Profile {
    /// The full measurement, as archived under `results/` and quoted in
    /// EXPERIMENTS.md.
    #[default]
    Full,
    /// A cheap variant exercising the same code paths with reduced
    /// trial counts / sections — the mode CI runs on every push.
    Smoke,
}

impl Profile {
    /// `true` for [`Profile::Smoke`].
    #[must_use]
    pub fn is_smoke(self) -> bool {
        self == Profile::Smoke
    }

    /// The manifest/summary spelling (`"full"` / `"smoke"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Profile::Full => "full",
            Profile::Smoke => "smoke",
        }
    }
}

/// Why an experiment body gave up.
///
/// Anything [`Display`]-able converts into a `Failure` (via
/// [`Failure::new`] or the blanket `From<impl Error>`), so experiment
/// bodies can use `?` on simulator, retry, and formatting errors alike.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Failure {
    message: String,
}

impl Failure {
    /// A failure carrying `message`.
    pub fn new(message: impl Display) -> Failure {
        Failure {
            message: message.to_string(),
        }
    }

    /// The human-readable reason.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl<E: std::error::Error> From<E> for Failure {
    fn from(e: E) -> Failure {
        Failure::new(e)
    }
}

/// The handle an experiment body receives: output sink, profile/seed
/// parameters, extra standalone options, and the cooperative deadline.
///
/// Cloning a `Ctx` clones the *handle*; all clones share one output
/// buffer (that is how the executor snapshots partial output after a
/// panic or a deadline overrun).
#[derive(Clone)]
pub struct Ctx {
    profile: Profile,
    seed: u64,
    deadline: Option<Instant>,
    opts: Vec<String>,
    fleet_threads: usize,
    out: Arc<Mutex<String>>,
}

impl Ctx {
    /// A context for one run of an experiment. `deadline` is the
    /// instant after which [`Ctx::deadline_exceeded`] reports true;
    /// `opts` are extra pass-through flags from a standalone bin (e.g.
    /// `--full-slice`).
    #[must_use]
    pub fn new(
        profile: Profile,
        seed: u64,
        deadline: Option<Instant>,
        opts: Vec<String>,
    ) -> Ctx {
        Ctx {
            profile,
            seed,
            deadline,
            opts,
            fleet_threads: 0,
            out: Arc::new(Mutex::new(String::new())),
        }
    }

    /// Sets the worker-thread count experiments pass to fleet grids
    /// (`0` = the process-wide default, see
    /// `pandora_sim::fleet::set_default_threads`). Builder-style so the
    /// 4-argument [`Ctx::new`] signature stays stable.
    #[must_use]
    pub fn with_fleet_threads(mut self, threads: usize) -> Ctx {
        self.fleet_threads = threads;
        self
    }

    /// Worker threads for fleet grids (0 = process default).
    #[must_use]
    pub fn fleet_threads(&self) -> usize {
        self.fleet_threads
    }

    /// The requested profile.
    #[must_use]
    pub fn profile(&self) -> Profile {
        self.profile
    }

    /// Shorthand for `profile().is_smoke()`.
    #[must_use]
    pub fn smoke(&self) -> bool {
        self.profile.is_smoke()
    }

    /// The suite seed. Experiments derive any per-trial randomness from
    /// this so a resumed run can re-verify byte-identical output.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether a standalone pass-through flag (e.g. `"--full-slice"`)
    /// was given.
    #[must_use]
    pub fn has_opt(&self, flag: &str) -> bool {
        self.opts.iter().any(|o| o == flag)
    }

    /// Whether the per-experiment deadline has passed. Long loops check
    /// this to degrade gracefully before the orchestrator's watchdog
    /// declares the run wedged.
    #[must_use]
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    fn buffer(&self) -> MutexGuard<'_, String> {
        // A panicking experiment can poison the buffer mid-append; the
        // partial text it holds is exactly what we want to salvage.
        match self.out.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Appends one formatted line (newline added) to the report.
    pub fn line(&self, args: fmt::Arguments<'_>) {
        use fmt::Write;
        let mut out = self.buffer();
        let _ = out.write_fmt(args);
        out.push('\n');
    }

    /// Appends a section header in the harness's uniform style.
    pub fn header(&self, title: &str) {
        let mut out = self.buffer();
        out.push_str("\n=== ");
        out.push_str(title);
        out.push_str(" ===\n");
    }

    /// A snapshot of everything written so far (partial output survives
    /// panics and deadline overruns).
    #[must_use]
    pub fn output(&self) -> String {
        self.buffer().clone()
    }
}

/// Appends one `format!`-style line to a [`Ctx`] report — the
/// experiment-body replacement for `println!`.
#[macro_export]
macro_rules! outln {
    ($ctx:expr) => {
        $ctx.line(format_args!(""))
    };
    ($ctx:expr, $($arg:tt)*) => {
        $ctx.line(format_args!($($arg)*))
    };
}

/// The body of an experiment.
pub type RunFn = fn(&Ctx) -> Result<(), Failure>;

/// A named experiment registered with the suite: one table, figure, or
/// e-experiment of the paper.
#[derive(Clone)]
pub struct Experiment {
    /// Registry name — also the results file stem (`results/<name>.txt`)
    /// and the bench binary name.
    pub name: &'static str,
    /// One-line description (shown by `runall --list`).
    pub title: &'static str,
    /// The body. Must honour [`Ctx::profile`] and route every line of
    /// output through the [`Ctx`].
    pub run: RunFn,
    /// A stable fingerprint of the configuration the experiment runs
    /// under (typically `SimConfig::stable_hash` of its machine). Part
    /// of the resume manifest: if it changes, old journal entries no
    /// longer describe this experiment and resume is refused.
    pub fingerprint: fn() -> u64,
    /// Wall-clock budget for one attempt of the *full* profile. When it
    /// expires the orchestrator abandons the attempt and records a
    /// partial result.
    pub deadline: Duration,
}

impl fmt::Debug for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Experiment")
            .field("name", &self.name)
            .field("title", &self.title)
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_collects_lines_headers_and_partial_snapshots() {
        let ctx = Ctx::new(Profile::Smoke, 7, None, vec!["--x".into()]);
        ctx.header("T");
        outln!(ctx, "a = {}", 1);
        outln!(ctx);
        assert_eq!(ctx.output(), "\n=== T ===\na = 1\n\n");
        assert!(ctx.smoke());
        assert_eq!(ctx.seed(), 7);
        assert!(ctx.has_opt("--x"));
        assert!(!ctx.has_opt("--y"));
        // Clones share the buffer.
        let clone = ctx.clone();
        outln!(clone, "b");
        assert!(ctx.output().ends_with("b\n"));
    }

    #[test]
    fn deadline_reporting() {
        let past = Ctx::new(Profile::Full, 0, Some(Instant::now()), Vec::new());
        assert!(past.deadline_exceeded());
        let none = Ctx::new(Profile::Full, 0, None, Vec::new());
        assert!(!none.deadline_exceeded());
    }

    #[test]
    fn failure_conversions() {
        let f = Failure::new("boom");
        assert_eq!(f.message(), "boom");
        assert_eq!(f.to_string(), "boom");
        let io = std::io::Error::other("disk on fire");
        let f: Failure = io.into();
        assert!(f.message().contains("disk on fire"));
    }
}
