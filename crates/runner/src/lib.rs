#![warn(missing_docs)]

//! # pandora-runner
//!
//! Resilient experiment orchestration for the Pandora reproduction:
//! the paper's evidence is a suite of long-running experiments (Fig
//! 2–7, Tables I–II, E9–E15), and this crate is the runtime that makes
//! regenerating that suite repeatable and crash-safe.
//!
//! * **Registry** ([`Registry`], [`Experiment`]) — every table, figure,
//!   and e-experiment registered under a stable name with a *smoke* and
//!   a *full* [`Profile`], a per-experiment wall-clock deadline, and a
//!   configuration fingerprint.
//! * **Orchestration** ([`run_suite`]) — a thread pool with
//!   per-experiment deadlines (the job-level analogue of the
//!   simulator's `SimConfig::watchdog_cycles`), panic isolation via
//!   `catch_unwind` (one wedged or crashing experiment degrades to a
//!   recorded partial result instead of aborting the suite), and
//!   retry-with-backoff through
//!   [`pandora_channels::retry::RetryPolicy`].
//! * **Checkpoint/resume** ([`Journal`], [`Manifest`]) — each completed
//!   experiment is journaled with an fsynced append; a restarted run
//!   (`runall --resume`) skips completed experiments, refuses to mix
//!   runs whose seed/config hash differ, and re-verifies determinism by
//!   re-running a journaled experiment and comparing bytes.
//! * **Crash-safe output** ([`atomic_write`]) — `results/*.txt` and
//!   `results/summary.json` are published by temp-file + rename +
//!   fsync, so a killed process never leaves a truncated file.
//! * **Partial results** ([`partial_results`]) — the shared standalone
//!   exit protocol every bench bin uses.
//! * **Chaos** ([`chaos`]) — a deterministic, seeded fail-point layer
//!   every journal/publish I/O operation is routed through, so storage
//!   faults (ENOSPC, failed fsyncs/renames, short writes) and simulated
//!   kills at every crash point are first-class, testable inputs
//!   (`runall --chaos`), with injection counters surfaced in the suite
//!   report's `health` section.
//!
//! The experiments themselves live in `pandora-bench`
//! (`pandora_bench::experiments::registry()`); the `runall` binary
//! there drives this crate.

pub mod chaos;
pub mod error;
pub mod experiment;
pub mod journal;
pub mod orchestrator;
pub mod output;
pub mod partial_results;
pub mod registry;

#[doc(hidden)]
pub mod test_util;

pub use chaos::{ChaosEvent, ChaosKind, ChaosPlan, ChaosStats};
pub use experiment::{Ctx, Experiment, Failure, Profile, RunFn};
pub use journal::{Journal, JournalEntry, Manifest};
pub use orchestrator::{
    execute, run_suite, ExecOutcome, ExperimentReport, Status, SuiteError, SuiteHealth,
    SuiteOptions, SuiteReport,
};
pub use error::RunnerError;
pub use output::{atomic_write, clean_stale_tmp, fnv1a64, hash_str, scan_dir};
pub use registry::{glob_match, Registry};
