//! Deterministic storage fault injection (fail points) for the runner.
//!
//! The simulator already has a plan-driven fault harness
//! (`pandora_sim::fault::FaultPlan`): plain-data events, fired at
//! enumerated points, same seed → same run. This module is the same
//! idea one level up, aimed at the runner's *own* crash-safety story —
//! the fsynced journal and the temp-file+rename publish path. Every
//! journal and publish I/O operation is routed through a named
//! fail-point [`Site`]; an installed [`ChaosPlan`] can make the *n*-th
//! operation at a site fail with a chosen [`ChaosKind`]: `ENOSPC`,
//! `EIO`, a short write, a failed fsync or rename — or a **crash
//! point**, a simulated kill after which every further routed operation
//! fails without touching disk, exactly as if the process had died
//! between two syscalls.
//!
//! Plans are installed per thread ([`install`]) so parallel tests stay
//! isolated; with no plan installed the wrappers are plain pass-through
//! calls. The orchestrator installs the plan from
//! [`SuiteOptions::chaos`](crate::SuiteOptions) and folds the
//! resulting [`ChaosStats`] into the suite's health section.
//!
//! Simulated kills are distinguishable from real I/O errors
//! ([`is_sim_kill`]), because the two demand opposite reactions: a real
//! `ENOSPC` is degraded around (stop journaling, keep running), while a
//! simulated kill must abort the run *un*-gracefully — that is the
//! whole point of a crash test.

use std::cell::RefCell;
use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// The operation class performed at a [`Site`]; decides which
/// [`ChaosKind`]s are meaningful there.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Opening/creating a file.
    Create,
    /// `write_all` of a byte buffer.
    WriteAll,
    /// `sync_all` / `sync_data`.
    Sync,
    /// `fs::rename`.
    Rename,
    /// `set_len` (journal recovery truncation).
    Truncate,
}

/// One enumerated fail-point in the runner's storage layer.
///
/// The variants enumerate every write/fsync/rename the journal
/// ([`crate::journal`]) and the atomic publish path
/// ([`crate::output::atomic_write`]) perform, in program order — so a
/// [`ChaosKind::Crash`] "between any write/fsync/rename pair" is
/// expressed as a crash *at* the following site occurrence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Site {
    /// Creating/truncating the journal file.
    JournalCreate,
    /// Writing the journal magic header line.
    JournalHeaderWrite,
    /// Syncing the freshly created journal.
    JournalHeaderSync,
    /// Truncating a torn tail off the journal on resume recovery.
    JournalRecoverTruncate,
    /// Writing one appended journal entry line.
    JournalAppendWrite,
    /// Syncing an appended journal entry.
    JournalAppendSync,
    /// Creating the temp file of an atomic publish.
    PublishTmpCreate,
    /// Writing the temp file's bytes.
    PublishTmpWrite,
    /// Syncing the temp file.
    PublishTmpSync,
    /// Renaming the temp file over the destination.
    PublishRename,
    /// Syncing the destination directory after the rename.
    PublishDirSync,
}

impl Site {
    /// Every site, in journal-then-publish program order.
    pub const ALL: [Site; 11] = [
        Site::JournalCreate,
        Site::JournalHeaderWrite,
        Site::JournalHeaderSync,
        Site::JournalRecoverTruncate,
        Site::JournalAppendWrite,
        Site::JournalAppendSync,
        Site::PublishTmpCreate,
        Site::PublishTmpWrite,
        Site::PublishTmpSync,
        Site::PublishRename,
        Site::PublishDirSync,
    ];

    /// Stable name (used in health sections and test matrices).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Site::JournalCreate => "journal-create",
            Site::JournalHeaderWrite => "journal-header-write",
            Site::JournalHeaderSync => "journal-header-sync",
            Site::JournalRecoverTruncate => "journal-recover-truncate",
            Site::JournalAppendWrite => "journal-append-write",
            Site::JournalAppendSync => "journal-append-sync",
            Site::PublishTmpCreate => "publish-tmp-create",
            Site::PublishTmpWrite => "publish-tmp-write",
            Site::PublishTmpSync => "publish-tmp-sync",
            Site::PublishRename => "publish-rename",
            Site::PublishDirSync => "publish-dir-sync",
        }
    }

    /// The operation class performed at this site.
    #[must_use]
    pub fn op(self) -> Op {
        match self {
            Site::JournalCreate | Site::PublishTmpCreate => Op::Create,
            Site::JournalHeaderWrite | Site::JournalAppendWrite | Site::PublishTmpWrite => {
                Op::WriteAll
            }
            Site::JournalHeaderSync
            | Site::JournalAppendSync
            | Site::PublishTmpSync
            | Site::PublishDirSync => Op::Sync,
            Site::PublishRename => Op::Rename,
            Site::JournalRecoverTruncate => Op::Truncate,
        }
    }

    fn index(self) -> usize {
        Site::ALL.iter().position(|s| *s == self).expect("site in ALL")
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One kind of injected storage fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaosKind {
    /// The device is full: `ENOSPC` (os error 28).
    Enospc,
    /// A generic I/O error: `EIO` (os error 5).
    Eio,
    /// An fsync that reports failure (the write may or may not be
    /// durable — the caller must treat the data as lost).
    SyncFail,
    /// A rename that reports failure, leaving the temp file behind
    /// exactly as a real `EXDEV`/`EIO` would.
    RenameFail,
    /// A short write: only the first `keep` bytes reach the file, then
    /// the write errors. Models a partially applied `write(2)`.
    ShortWrite {
        /// Bytes that do land on disk before the failure.
        keep: usize,
    },
    /// A simulated kill *before* the operation touches disk: the op
    /// fails with a [sim-kill error](is_sim_kill) and every later
    /// routed operation on this thread fails the same way.
    Crash,
    /// A simulated kill *mid-write*: the first `keep` bytes land on
    /// disk (a torn tail), then the process "dies" as with
    /// [`ChaosKind::Crash`].
    TornWriteCrash {
        /// Bytes that land before the kill.
        keep: usize,
    },
}

impl ChaosKind {
    /// Stable name (health sections, logs).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ChaosKind::Enospc => "enospc",
            ChaosKind::Eio => "eio",
            ChaosKind::SyncFail => "sync-fail",
            ChaosKind::RenameFail => "rename-fail",
            ChaosKind::ShortWrite { .. } => "short-write",
            ChaosKind::Crash => "crash",
            ChaosKind::TornWriteCrash { .. } => "torn-write-crash",
        }
    }

    /// Whether the suite is expected to *survive* this kind (degrade
    /// gracefully) as opposed to the simulated kills, which by design
    /// abort the run mid-flight.
    #[must_use]
    pub fn is_recoverable(self) -> bool {
        !matches!(self, ChaosKind::Crash | ChaosKind::TornWriteCrash { .. })
    }
}

/// A [`ChaosKind`] armed at the `nth` occurrence of an operation at a
/// [`Site`] (the occurrence index plays the role `cycle` plays in the
/// simulator's `FaultEvent`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChaosEvent {
    /// Where the fault fires.
    pub site: Site,
    /// 0-based occurrence of the operation at that site.
    pub nth: u64,
    /// What happens.
    pub kind: ChaosKind,
}

/// A deterministic, site-ordered storage fault schedule. Plain data:
/// the same plan against the same suite reproduces the same failures
/// byte for byte.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// A plan firing the given events; they are sorted by (site,
    /// occurrence) — stable, so duplicates keep their given order.
    #[must_use]
    pub fn new(mut events: Vec<ChaosEvent>) -> ChaosPlan {
        events.sort_by_key(|e| (e.site.index(), e.nth));
        ChaosPlan { events }
    }

    /// A plan with one event.
    #[must_use]
    pub fn single(site: Site, nth: u64, kind: ChaosKind) -> ChaosPlan {
        ChaosPlan::new(vec![ChaosEvent { site, nth, kind }])
    }

    /// A plan that kills the process at the `nth` operation on `site` —
    /// the crash-point constructor the recovery matrix iterates.
    #[must_use]
    pub fn crash_at(site: Site, nth: u64) -> ChaosPlan {
        ChaosPlan::single(site, nth, ChaosKind::Crash)
    }

    /// A seeded pseudo-random plan of `n` *recoverable* faults, each
    /// drawn at a random site with a kind meaningful for that site's
    /// operation class. Mirrors `FaultPlan::random`: the same seed
    /// always produces the same plan, and the kinds that abort the run
    /// by design ([`ChaosKind::Crash`] / [`ChaosKind::TornWriteCrash`])
    /// are never drawn — they belong in targeted crash-point tests.
    #[must_use]
    pub fn random(seed: u64, n: usize) -> ChaosPlan {
        let mut state = seed ^ 0xc4a0_5eed_0bad_d15c;
        let events = (0..n)
            .map(|_| {
                let site = Site::ALL[(splitmix64(&mut state) % Site::ALL.len() as u64) as usize];
                let nth = splitmix64(&mut state) % 6;
                let roll = splitmix64(&mut state);
                let kind = match site.op() {
                    Op::WriteAll => match roll % 3 {
                        0 => ChaosKind::Enospc,
                        1 => ChaosKind::Eio,
                        _ => ChaosKind::ShortWrite {
                            keep: (roll >> 8) as usize % 12,
                        },
                    },
                    Op::Sync => {
                        if roll.is_multiple_of(2) {
                            ChaosKind::SyncFail
                        } else {
                            ChaosKind::Eio
                        }
                    }
                    Op::Rename => {
                        if roll.is_multiple_of(2) {
                            ChaosKind::RenameFail
                        } else {
                            ChaosKind::Eio
                        }
                    }
                    Op::Create => {
                        if roll.is_multiple_of(2) {
                            ChaosKind::Enospc
                        } else {
                            ChaosKind::Eio
                        }
                    }
                    Op::Truncate => ChaosKind::Eio,
                };
                ChaosEvent { site, nth, kind }
            })
            .collect();
        ChaosPlan::new(events)
    }

    /// The `runall --chaos` selftest plan: one fault of each of the
    /// five recoverable kinds. The placements are fixed, not
    /// seed-varied, because faults interfere with later occurrence
    /// counts — a journal fault disables journaling (so at most one
    /// journal event can ever fire per run), and a failed publish skips
    /// its own later sync/rename steps. These placements are chosen so
    /// every event lands on a *distinct* operation and all five fire on
    /// any suite of five or more experiments (the first four publish
    /// faults each consume one result publish; the journal fault fires
    /// on the first *successful* result's checkpoint append, which
    /// needs a fifth), while the suite's final `summary.json` publish
    /// stays clean (CI uploads it as an artifact). The seed varies only
    /// the short write's torn length; the same seed always produces the
    /// same plan.
    #[must_use]
    pub fn selftest(seed: u64) -> ChaosPlan {
        let mut state = seed ^ 0x5e1f_7e57_c4a0_5000;
        let keep = (splitmix64(&mut state) % 12) as usize;
        ChaosPlan::new(vec![
            // Fires on the first journal append; journaling then
            // degrades, so this is the run's only journal fault.
            ChaosEvent {
                site: Site::JournalAppendSync,
                nth: 0,
                kind: ChaosKind::SyncFail,
            },
            // Publish #1 (the first result file; #0 is the manifest)
            // dies at its write...
            ChaosEvent {
                site: Site::PublishTmpWrite,
                nth: 1,
                kind: ChaosKind::Enospc,
            },
            // ...#3 dies mid-write...
            ChaosEvent {
                site: Site::PublishTmpWrite,
                nth: 3,
                kind: ChaosKind::ShortWrite { keep },
            },
            // ...#2 passes its write but fails its fsync (sync
            // occurrence 1: #0 took occurrence 0, #1 never got here)...
            ChaosEvent {
                site: Site::PublishTmpSync,
                nth: 1,
                kind: ChaosKind::Eio,
            },
            // ...and #4 passes write+fsync but fails its rename
            // (rename occurrence 1, after #0's occurrence 0).
            ChaosEvent {
                site: Site::PublishRename,
                nth: 1,
                kind: ChaosKind::RenameFail,
            },
        ])
    }

    /// The armed events, in (site, occurrence) order.
    #[must_use]
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Number of armed events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan arms nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The distinct fault kinds the plan arms, in a stable order.
    #[must_use]
    pub fn kinds(&self) -> Vec<&'static str> {
        let mut kinds: Vec<&'static str> = self.events.iter().map(|e| e.kind.as_str()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        kinds
    }
}

/// Counters collected while a plan was installed.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ChaosStats {
    /// Routed operations per site, in [`Site::ALL`] order.
    pub ops_by_site: Vec<(&'static str, u64)>,
    /// Total routed operations.
    pub total_ops: u64,
    /// Faults that actually fired.
    pub injected: u64,
    /// Distinct kinds among the fired faults (stable order).
    pub kinds_injected: Vec<&'static str>,
    /// Whether a simulated kill fired (the thread's storage layer is
    /// dead from that point on).
    pub crashed: bool,
}

struct ChaosState {
    events: Vec<ChaosEvent>,
    ops: [u64; Site::ALL.len()],
    injected: u64,
    kinds: Vec<&'static str>,
    dead: Option<Site>,
}

impl ChaosState {
    fn stats(&self) -> ChaosStats {
        let mut kinds = self.kinds.clone();
        kinds.sort_unstable();
        kinds.dedup();
        ChaosStats {
            ops_by_site: Site::ALL.iter().map(|s| (s.as_str(), self.ops[s.index()])).collect(),
            total_ops: self.ops.iter().sum(),
            injected: self.injected,
            kinds_injected: kinds,
            crashed: self.dead.is_some(),
        }
    }
}

thread_local! {
    static STATE: RefCell<Option<ChaosState>> = const { RefCell::new(None) };
}

/// Guard for an installed plan; restores the previous (usually absent)
/// state on drop. Not `Send`: chaos state is per thread by design, so
/// the orchestrator thread that owns the journal and publishes is the
/// one whose I/O is disturbed.
#[derive(Debug)]
pub struct ChaosGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Installs `plan` on the current thread until the returned guard is
/// dropped. While installed, every routed operation is counted (even
/// under an empty plan — which is how tests enumerate the crash-point
/// matrix) and matching events fire.
#[must_use]
pub fn install(plan: &ChaosPlan) -> ChaosGuard {
    STATE.with(|s| {
        *s.borrow_mut() = Some(ChaosState {
            events: plan.events.clone(),
            ops: [0; Site::ALL.len()],
            injected: 0,
            kinds: Vec::new(),
            dead: None,
        });
    });
    ChaosGuard {
        _not_send: std::marker::PhantomData,
    }
}

impl ChaosGuard {
    /// Snapshot of the counters so far (the guard stays installed).
    #[must_use]
    pub fn stats(&self) -> ChaosStats {
        STATE.with(|s| {
            s.borrow()
                .as_ref()
                .map(ChaosState::stats)
                .unwrap_or_default()
        })
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        STATE.with(|s| *s.borrow_mut() = None);
    }
}

/// The payload marking a simulated kill.
#[derive(Debug)]
struct SimKill {
    site: Site,
}

impl fmt::Display for SimKill {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulated kill at fail-point {} (chaos crash test)", self.site)
    }
}

impl std::error::Error for SimKill {}

fn sim_kill(site: Site) -> io::Error {
    io::Error::other(SimKill { site })
}

/// Whether `e` is a simulated kill from a [`ChaosKind::Crash`] /
/// [`ChaosKind::TornWriteCrash`] (as opposed to a real — or injected
/// but recoverable — I/O error). Callers degrade gracefully around
/// everything *except* these: a simulated kill must take the run down.
#[must_use]
pub fn is_sim_kill(e: &io::Error) -> bool {
    e.get_ref().is_some_and(<dyn std::error::Error + Send + Sync>::is::<SimKill>)
}

fn injected_error(site: Site, kind: ChaosKind) -> io::Error {
    match kind {
        ChaosKind::Enospc => io::Error::from_raw_os_error(28),
        ChaosKind::Eio => io::Error::from_raw_os_error(5),
        ChaosKind::SyncFail => {
            io::Error::other(format!("injected fsync failure at {site}"))
        }
        ChaosKind::RenameFail => {
            io::Error::other(format!("injected rename failure at {site}"))
        }
        ChaosKind::ShortWrite { keep } => io::Error::new(
            io::ErrorKind::WriteZero,
            format!("injected short write at {site} (only {keep} bytes applied)"),
        ),
        ChaosKind::Crash | ChaosKind::TornWriteCrash { .. } => sim_kill(site),
    }
}

/// Counts the operation; returns `Err` if the thread is already dead
/// (post-crash), `Ok(Some(kind))` if an event fires here.
fn check(site: Site) -> io::Result<Option<ChaosKind>> {
    STATE.with(|s| {
        let mut borrow = s.borrow_mut();
        let Some(state) = borrow.as_mut() else {
            return Ok(None);
        };
        if let Some(dead_at) = state.dead {
            return Err(sim_kill(dead_at));
        }
        let n = state.ops[site.index()];
        state.ops[site.index()] += 1;
        let hit = state
            .events
            .iter()
            .position(|e| e.site == site && e.nth == n);
        let Some(i) = hit else { return Ok(None) };
        let kind = state.events.remove(i).kind;
        state.injected += 1;
        state.kinds.push(kind.as_str());
        if !kind.is_recoverable() {
            state.dead = Some(site);
        }
        Ok(Some(kind))
    })
}

/// Routed `File` create: runs `open` unless a fault fires first.
///
/// # Errors
///
/// The injected fault, a post-crash sim-kill, or the real `open` error.
pub fn create(site: Site, open: impl FnOnce() -> io::Result<File>) -> io::Result<File> {
    match check(site)? {
        None => open(),
        Some(kind) => Err(injected_error(site, kind)),
    }
}

/// Routed `write_all`. Short writes and torn-write kills apply a prefix
/// of `bytes` for real before failing, so the on-disk state is the torn
/// state a genuine partial write leaves.
///
/// # Errors
///
/// The injected fault, a post-crash sim-kill, or the real write error.
pub fn write_all(site: Site, file: &mut File, bytes: &[u8]) -> io::Result<()> {
    match check(site)? {
        None => file.write_all(bytes),
        Some(kind @ (ChaosKind::ShortWrite { keep } | ChaosKind::TornWriteCrash { keep })) => {
            let torn = &bytes[..keep.min(bytes.len())];
            file.write_all(torn)?;
            let _ = file.sync_data();
            Err(injected_error(site, kind))
        }
        Some(kind) => Err(injected_error(site, kind)),
    }
}

/// Routed `sync_all`.
///
/// # Errors
///
/// The injected fault, a post-crash sim-kill, or the real sync error.
pub fn sync_all(site: Site, file: &File) -> io::Result<()> {
    match check(site)? {
        None => file.sync_all(),
        Some(kind) => Err(injected_error(site, kind)),
    }
}

/// Routed `sync_data`.
///
/// # Errors
///
/// The injected fault, a post-crash sim-kill, or the real sync error.
pub fn sync_data(site: Site, file: &File) -> io::Result<()> {
    match check(site)? {
        None => file.sync_data(),
        Some(kind) => Err(injected_error(site, kind)),
    }
}

/// Routed `fs::rename`.
///
/// # Errors
///
/// The injected fault, a post-crash sim-kill, or the real rename error.
pub fn rename(site: Site, from: &Path, to: &Path) -> io::Result<()> {
    match check(site)? {
        None => std::fs::rename(from, to),
        Some(kind) => Err(injected_error(site, kind)),
    }
}

/// Routed `set_len`.
///
/// # Errors
///
/// The injected fault, a post-crash sim-kill, or the real truncate
/// error.
pub fn set_len(site: Site, file: &File, len: u64) -> io::Result<()> {
    match check(site)? {
        None => file.set_len(len),
        Some(kind) => Err(injected_error(site, kind)),
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::TempDir;
    use std::fs::OpenOptions;

    fn tmp_file(dir: &TempDir, name: &str) -> File {
        OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(dir.path().join(name))
            .unwrap()
    }

    #[test]
    fn plans_sort_by_site_then_occurrence() {
        let p = ChaosPlan::new(vec![
            ChaosEvent {
                site: Site::PublishRename,
                nth: 1,
                kind: ChaosKind::RenameFail,
            },
            ChaosEvent {
                site: Site::JournalCreate,
                nth: 0,
                kind: ChaosKind::Eio,
            },
        ]);
        assert_eq!(p.events()[0].site, Site::JournalCreate);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn random_plans_are_deterministic_and_recoverable_only() {
        let a = ChaosPlan::random(7, 32);
        let b = ChaosPlan::random(7, 32);
        let c = ChaosPlan::random(8, 32);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 32);
        for e in a.events() {
            assert!(
                e.kind.is_recoverable(),
                "random plans must not schedule kills: {e:?}"
            );
        }
    }

    #[test]
    fn selftest_plan_covers_five_distinct_recoverable_kinds() {
        let p = ChaosPlan::selftest(0);
        assert_eq!(p.kinds().len(), 5, "kinds: {:?}", p.kinds());
        assert_eq!(ChaosPlan::selftest(3), ChaosPlan::selftest(3));
        for e in p.events() {
            assert!(e.kind.is_recoverable());
        }
    }

    #[test]
    fn events_fire_on_the_nth_occurrence_and_are_counted() {
        let dir = TempDir::new("chaos_nth");
        let guard = install(&ChaosPlan::single(
            Site::JournalAppendWrite,
            1,
            ChaosKind::Enospc,
        ));
        let mut f = tmp_file(&dir, "f");
        assert!(write_all(Site::JournalAppendWrite, &mut f, b"first").is_ok());
        let err = write_all(Site::JournalAppendWrite, &mut f, b"second").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28), "ENOSPC");
        assert!(!is_sim_kill(&err));
        // The event is consumed: occurrence 2 passes through again.
        assert!(write_all(Site::JournalAppendWrite, &mut f, b"third").is_ok());
        let stats = guard.stats();
        assert_eq!(stats.injected, 1);
        assert_eq!(stats.kinds_injected, vec!["enospc"]);
        assert!(!stats.crashed);
        assert_eq!(stats.total_ops, 3);
        let by_site: std::collections::HashMap<_, _> = stats.ops_by_site.into_iter().collect();
        assert_eq!(by_site["journal-append-write"], 3);
        assert_eq!(
            std::fs::read(dir.path().join("f")).unwrap(),
            b"firstthird",
            "the failed write applies nothing"
        );
    }

    #[test]
    fn short_writes_leave_a_real_prefix_on_disk() {
        let dir = TempDir::new("chaos_short");
        let _guard = install(&ChaosPlan::single(
            Site::PublishTmpWrite,
            0,
            ChaosKind::ShortWrite { keep: 4 },
        ));
        let mut f = tmp_file(&dir, "f");
        let err = write_all(Site::PublishTmpWrite, &mut f, b"0123456789").unwrap_err();
        assert!(!is_sim_kill(&err));
        assert_eq!(std::fs::read(dir.path().join("f")).unwrap(), b"0123");
    }

    #[test]
    fn a_crash_kills_every_later_routed_operation_without_touching_disk() {
        let dir = TempDir::new("chaos_dead");
        let guard = install(&ChaosPlan::crash_at(Site::JournalAppendSync, 0));
        let mut f = tmp_file(&dir, "f");
        assert!(write_all(Site::JournalAppendWrite, &mut f, b"live").is_ok());
        let err = sync_data(Site::JournalAppendSync, &f).unwrap_err();
        assert!(is_sim_kill(&err), "{err}");
        // Dead: even an unrelated site fails, and nothing lands on disk.
        let err = write_all(Site::PublishTmpWrite, &mut f, b"ghost").unwrap_err();
        assert!(is_sim_kill(&err));
        assert_eq!(std::fs::read(dir.path().join("f")).unwrap(), b"live");
        assert!(guard.stats().crashed);
    }

    #[test]
    fn uninstalled_threads_pass_straight_through() {
        let dir = TempDir::new("chaos_off");
        let mut f = tmp_file(&dir, "f");
        assert!(write_all(Site::JournalAppendWrite, &mut f, b"plain").is_ok());
        assert!(sync_data(Site::JournalAppendSync, &f).is_ok());
        // No state: nothing was counted.
        let guard = install(&ChaosPlan::default());
        assert_eq!(guard.stats().total_ops, 0);
    }

    #[test]
    fn guard_drop_uninstalls() {
        let dir = TempDir::new("chaos_drop");
        {
            let _guard = install(&ChaosPlan::crash_at(Site::PublishRename, 0));
            let err =
                rename(Site::PublishRename, &dir.path().join("a"), &dir.path().join("b"))
                    .unwrap_err();
            assert!(is_sim_kill(&err));
        }
        // After drop the same rename is a plain passthrough (and fails
        // for the real reason: the source does not exist).
        let err = rename(Site::PublishRename, &dir.path().join("a"), &dir.path().join("b"))
            .unwrap_err();
        assert!(!is_sim_kill(&err));
    }
}
