//! Crash-point recovery proofs for the chaos fail-point layer.
//!
//! The central property: for every enumerated storage fail-point
//! ([`Site`]) and every occurrence a real suite reaches, killing the
//! run there and restarting with `--resume` yields a results directory
//! **byte-identical** to an uninterrupted run — same manifest, same
//! `results/*.txt`, same `summary.canonical.json`. The matrix is
//! enumerated from measured occurrence counts (an installed empty plan
//! counts every routed operation), so a new fail-point added to the
//! storage layer is exercised here automatically.

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Duration;

use pandora_runner::chaos::Site;
use pandora_runner::test_util::TempDir;
use pandora_runner::{
    outln, run_suite, ChaosKind, ChaosPlan, Ctx, Experiment, Failure, Journal, Registry, Status,
    SuiteError, SuiteOptions, SuiteReport,
};
use proptest::{prop_assert, prop_assert_eq, run_proptest, ProptestConfig};

fn alpha(ctx: &Ctx) -> Result<(), Failure> {
    ctx.header("alpha");
    outln!(ctx, "seed = {:#x}", ctx.seed());
    Ok(())
}

fn beta(ctx: &Ctx) -> Result<(), Failure> {
    ctx.header("beta");
    outln!(ctx, "value = {}", ctx.seed().wrapping_mul(3));
    Ok(())
}

fn gamma(ctx: &Ctx) -> Result<(), Failure> {
    ctx.header("gamma");
    for i in 0..4 {
        outln!(ctx, "row {i}: {}", ctx.seed() ^ i);
    }
    Ok(())
}

fn delta(ctx: &Ctx) -> Result<(), Failure> {
    outln!(ctx, "delta = {}", ctx.seed().rotate_left(7));
    Ok(())
}

fn epsilon(ctx: &Ctx) -> Result<(), Failure> {
    outln!(ctx, "epsilon = {}", ctx.seed().count_ones());
    Ok(())
}

fn exp(name: &'static str, run: fn(&Ctx) -> Result<(), Failure>) -> Experiment {
    Experiment {
        name,
        title: name,
        run,
        fingerprint: || 0xCAFE,
        deadline: Duration::from_secs(30),
    }
}

fn registry3() -> Registry {
    Registry::new()
        .with(exp("alpha", alpha))
        .with(exp("beta", beta))
        .with(exp("gamma", gamma))
}

fn registry5() -> Registry {
    registry3().with(exp("delta", delta)).with(exp("epsilon", epsilon))
}

/// Base options for these tests: deterministic single-worker execution,
/// no reverification (resumed artifacts must match without rewriting).
fn options(dir: &TempDir) -> SuiteOptions {
    SuiteOptions {
        results_dir: dir.path().to_path_buf(),
        jobs: 1,
        reverify: 0,
        ..SuiteOptions::default()
    }
}

/// The durable artifacts a run must reproduce byte-for-byte: the
/// manifest, the canonical summary, and every result file. The journal
/// and the full `summary.json` carry wall-clock times and are excluded
/// by design.
fn artifacts(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("results dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let keep = name == ".runall.manifest"
            || name == "summary.canonical.json"
            || name.ends_with(".txt");
        if keep {
            out.insert(name, std::fs::read(&path).expect("artifact readable"));
        }
    }
    out
}

/// Names of artifacts that differ between two runs (missing counts as
/// differing).
fn diff_artifacts(a: &BTreeMap<String, Vec<u8>>, b: &BTreeMap<String, Vec<u8>>) -> Vec<String> {
    let mut names: Vec<&String> = a.keys().chain(b.keys()).collect();
    names.sort();
    names.dedup();
    names
        .into_iter()
        .filter(|n| a.get(*n) != b.get(*n))
        .cloned()
        .collect()
}

fn assert_matches_baseline(dir: &TempDir, baseline: &BTreeMap<String, Vec<u8>>, context: &str) {
    let got = artifacts(dir.path());
    let diff = diff_artifacts(baseline, &got);
    assert!(diff.is_empty(), "{context}: artifacts differ from the uninterrupted run: {diff:?}");
}

/// Resume after a simulated kill: no chaos, fall back to a fresh run if
/// the kill predated the manifest.
fn recovery_options(dir: &TempDir) -> SuiteOptions {
    SuiteOptions {
        resume: true,
        resume_fallback: true,
        ..options(dir)
    }
}

#[test]
fn crash_point_matrix_heals_to_byte_identical_artifacts() {
    // Baseline: an uninterrupted run under an installed-but-empty plan,
    // which counts every routed operation without disturbing any.
    let base_dir = TempDir::new("chaos_matrix_base");
    let registry = registry3();
    let baseline_report = run_suite(
        &registry,
        &SuiteOptions {
            chaos: Some(ChaosPlan::new(Vec::new())),
            ..options(&base_dir)
        },
    )
    .expect("baseline run");
    assert!(baseline_report.all_ok());
    let baseline = artifacts(base_dir.path());
    let counts: BTreeMap<&str, u64> = baseline_report.health.ops_by_site.iter().copied().collect();
    assert!(baseline_report.health.io_ops > 0, "accounting must be on");

    let mut crash_points_fired = 0u64;
    for site in Site::ALL {
        // The health snapshot is taken before the two summary publishes,
        // so probe two occurrences past the measured count: that covers
        // the summary publishes on the publish sites, and costs only a
        // clean (nothing-fires) run elsewhere.
        let probes = counts.get(site.as_str()).copied().unwrap_or(0) + 2;
        for nth in 0..probes {
            let dir = TempDir::new(&format!("chaos_matrix_{site}_{nth}"));
            let crashed = run_suite(
                &registry,
                &SuiteOptions {
                    chaos: Some(ChaosPlan::crash_at(site, nth)),
                    ..options(&dir)
                },
            );
            match crashed {
                Err(SuiteError::Crashed(_)) => {
                    crash_points_fired += 1;
                    let healed = run_suite(&registry, &recovery_options(&dir))
                        .unwrap_or_else(|e| panic!("recovery after kill at {site}#{nth}: {e}"));
                    assert!(
                        healed.all_ok(),
                        "recovery after kill at {site}#{nth} left non-ok rows"
                    );
                    assert_matches_baseline(&dir, &baseline, &format!("kill at {site}#{nth}"));
                }
                // The occurrence was never reached (e.g. recovery
                // truncation in a fresh run): the run is clean and must
                // already match the baseline.
                Ok(report) => {
                    assert!(report.all_ok());
                    assert_matches_baseline(&dir, &baseline, &format!("unfired {site}#{nth}"));
                }
                Err(e) => panic!("kill at {site}#{nth}: unexpected error {e}"),
            }
            // Recovery (or the clean run) leaves no temp litter behind.
            let litter: Vec<_> = std::fs::read_dir(dir.path())
                .unwrap()
                .filter_map(|e| e.ok().map(|e| e.file_name().to_string_lossy().into_owned()))
                .filter(|n| n.contains(".tmp."))
                .collect();
            assert!(litter.is_empty(), "{site}#{nth} left temp litter: {litter:?}");
        }
    }
    // The matrix must actually exercise kills at (at least) every
    // journal-create/header/append and publish occurrence of a fresh
    // 3-experiment run.
    assert!(
        crash_points_fired >= 15,
        "only {crash_points_fired} crash points fired — the matrix lost coverage"
    );
}

#[test]
fn torn_append_crash_leaves_a_tail_that_resume_truncates() {
    let base_dir = TempDir::new("chaos_torn_base");
    let registry = registry3();
    run_suite(&registry, &options(&base_dir)).expect("baseline run");
    let baseline = artifacts(base_dir.path());

    // Kill the run mid-append of the second journal entry, leaving a
    // genuinely torn line on disk.
    let dir = TempDir::new("chaos_torn");
    let err = run_suite(
        &registry,
        &SuiteOptions {
            chaos: Some(ChaosPlan::single(
                Site::JournalAppendWrite,
                1,
                ChaosKind::TornWriteCrash { keep: 10 },
            )),
            ..options(&dir)
        },
    )
    .expect_err("torn-write kill aborts the run");
    assert!(matches!(err, SuiteError::Crashed(_)), "{err}");
    let journal_path = dir.path().join(".runall.journal");
    let torn = std::fs::read_to_string(&journal_path).expect("journal exists");
    assert!(!torn.ends_with('\n'), "the tail must be torn mid-line");
    // Lenient load drops the torn line; only the first entry survives.
    assert_eq!(Journal::load(&journal_path).expect("tail-tolerant load").len(), 1);

    // Resume: the tail is truncated, the lost experiment re-runs, and
    // the artifacts match the uninterrupted run.
    let healed = run_suite(&registry, &recovery_options(&dir)).expect("resume heals torn tail");
    assert!(healed.all_ok());
    assert!(healed.experiments[0].resumed, "the intact first entry is reused");
    assert_matches_baseline(&dir, &baseline, "torn-append kill");
    // The repaired journal now parses end to end.
    let entries = Journal::load(&journal_path).expect("repaired journal parses");
    assert_eq!(entries.len(), 3);
}

#[test]
fn a_kill_during_recovery_truncation_is_survivable_too() {
    let base_dir = TempDir::new("chaos_recover_base");
    let registry = registry3();
    run_suite(&registry, &options(&base_dir)).expect("baseline run");
    let baseline = artifacts(base_dir.path());

    // First kill: torn journal tail (as above).
    let dir = TempDir::new("chaos_recover_crash");
    let err = run_suite(
        &registry,
        &SuiteOptions {
            chaos: Some(ChaosPlan::single(
                Site::JournalAppendWrite,
                1,
                ChaosKind::TornWriteCrash { keep: 10 },
            )),
            ..options(&dir)
        },
    )
    .expect_err("first kill");
    assert!(matches!(err, SuiteError::Crashed(_)));

    // Second kill: die *during the recovery truncation itself*.
    let err = run_suite(
        &registry,
        &SuiteOptions {
            chaos: Some(ChaosPlan::crash_at(Site::JournalRecoverTruncate, 0)),
            ..recovery_options(&dir)
        },
    )
    .expect_err("kill during recovery truncation");
    assert!(matches!(err, SuiteError::Crashed(_)), "{err}");

    // Third start: clean resume heals to the baseline.
    let healed = run_suite(&registry, &recovery_options(&dir)).expect("second resume heals");
    assert!(healed.all_ok());
    assert_matches_baseline(&dir, &baseline, "double kill (append, then recover-truncate)");
}

fn run_selftest(dir: &TempDir, seed: u64) -> SuiteReport {
    run_suite(
        &registry5(),
        &SuiteOptions {
            chaos: Some(ChaosPlan::selftest(seed)),
            ..options(dir)
        },
    )
    .expect("selftest plan is recoverable: the suite must survive")
}

#[test]
fn selftest_plan_fires_five_fault_kinds_and_the_suite_degrades_gracefully() {
    let dir = TempDir::new("chaos_selftest");
    let report = run_selftest(&dir, 42);

    // Every experiment still completes; faults degrade, never fail.
    assert!(report.all_ok(), "{:?}", report.experiments.iter().map(|e| &e.status).collect::<Vec<_>>());
    let health = &report.health;
    assert_eq!(health.faults_injected, 5, "kinds fired: {:?}", health.fault_kinds);
    assert_eq!(health.faults_survived, 5, "a selftest plan must never kill the run");
    assert_eq!(
        health.fault_kinds,
        vec!["eio", "enospc", "rename-fail", "short-write", "sync-fail"],
        "all five recoverable kinds must fire"
    );
    // Four result publishes were lost (degraded around), and the first
    // journal checkpoint failure disabled journaling for the run.
    assert_eq!(health.publish_failures, 4);
    assert!(health.journal_degraded);
    // The suite's own summary still landed, with the health section.
    let summary = std::fs::read_to_string(dir.path().join("summary.json")).expect("summary lands");
    assert!(summary.contains("\"faults_injected\": 5"));
    assert!(summary.contains("\"journal_degraded\": true"));

    // Chaos determinism: the same seed reproduces the same injection
    // history, counter for counter. (`admission_deferrals` counts
    // queue-full polling ticks — scheduling timing, not injection
    // history — so it is normalized out of the comparison.)
    let dir2 = TempDir::new("chaos_selftest_repeat");
    let report2 = run_selftest(&dir2, 42);
    let mut h1 = report.health.clone();
    let mut h2 = report2.health.clone();
    h1.admission_deferrals = 0;
    h2.admission_deferrals = 0;
    assert_eq!(h1, h2);
    assert!(
        diff_artifacts(&artifacts(dir.path()), &artifacts(dir2.path())).is_empty(),
        "same seed, same plan, same surviving artifacts"
    );
}

#[test]
fn random_recoverable_plans_never_abort_and_resume_heals_to_baseline() {
    let base_dir = TempDir::new("chaos_prop_base");
    let registry = registry3();
    run_suite(&registry, &options(&base_dir)).expect("baseline run");
    let baseline = artifacts(base_dir.path());

    run_proptest(
        ProptestConfig::with_cases(16),
        (0u64..u64::MAX, 1usize..8),
        |(seed, n)| {
            let plan = ChaosPlan::random(seed, n);
            let dir = TempDir::new(&format!("chaos_prop_{seed:x}_{n}"));
            // Recoverable faults must degrade the run, never abort it.
            let faulted = run_suite(
                &registry,
                &SuiteOptions {
                    chaos: Some(plan),
                    ..options(&dir)
                },
            );
            prop_assert!(faulted.is_ok(), "recoverable plan aborted the suite: {faulted:?}");
            let report = faulted.unwrap();
            prop_assert!(
                report.experiments.iter().all(|e| e.status == Status::Ok),
                "storage faults must not change experiment statuses: {:?}",
                report.experiments.iter().map(|e| &e.status).collect::<Vec<_>>()
            );
            // One clean restart heals whatever the faults broke.
            let healed = run_suite(&registry, &recovery_options(&dir));
            prop_assert!(healed.is_ok(), "healing run failed: {healed:?}");
            let diff = diff_artifacts(&baseline, &artifacts(dir.path()));
            prop_assert_eq!(diff.len(), 0, "artifacts differ after healing: {:?}", diff);
            Ok(())
        },
        "random_recoverable_plans_never_abort_and_resume_heals_to_baseline",
    );
}
