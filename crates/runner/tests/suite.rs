//! End-to-end tests of the suite orchestrator: panic isolation,
//! deadline wedges, retry recovery, checkpoint/resume with torn-tail
//! journals, and determinism re-verification.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use pandora_channels::RetryPolicy;
use pandora_runner::test_util::TempDir;
use pandora_runner::{
    outln, run_suite, Ctx, Experiment, Failure, Profile, Registry, Status, SuiteError,
    SuiteOptions,
};

fn steady(ctx: &Ctx) -> Result<(), Failure> {
    ctx.header("steady");
    outln!(ctx, "seed = {:#x}, profile = {}", ctx.seed(), ctx.profile().as_str());
    Ok(())
}

fn panicker(ctx: &Ctx) -> Result<(), Failure> {
    outln!(ctx, "about to explode");
    panic!("injected test panic");
}

fn wedger(ctx: &Ctx) -> Result<(), Failure> {
    outln!(ctx, "entering the tar pit");
    // A true wedge: ignores the cooperative deadline entirely. The
    // orchestrator must abandon the thread when the deadline fires.
    loop {
        std::thread::sleep(Duration::from_millis(20));
    }
}

static FLAKY_CALLS: AtomicU32 = AtomicU32::new(0);

fn flaky(ctx: &Ctx) -> Result<(), Failure> {
    outln!(ctx, "attempt {}", FLAKY_CALLS.load(Ordering::SeqCst));
    if FLAKY_CALLS.fetch_add(1, Ordering::SeqCst) == 0 {
        return Err(Failure::new("transient disturbance"));
    }
    Ok(())
}

fn exp(name: &'static str, run: fn(&Ctx) -> Result<(), Failure>) -> Experiment {
    Experiment {
        name,
        title: name,
        run,
        fingerprint: || 0xF00D,
        deadline: Duration::from_secs(30),
    }
}

fn options(dir: &TempDir) -> SuiteOptions {
    SuiteOptions {
        results_dir: dir.path().to_path_buf(),
        ..SuiteOptions::default()
    }
}

#[test]
fn panicking_experiment_degrades_to_partial_with_salvaged_output() {
    let dir = TempDir::new("panic");
    let registry = Registry::new()
        .with(exp("good", steady))
        .with(exp("bad", panicker));
    let report = run_suite(&registry, &options(&dir)).expect("suite runs");

    assert_eq!(report.experiments.len(), 2);
    assert_eq!(report.experiments[0].status, Status::Ok);
    let bad = &report.experiments[1];
    assert_eq!(bad.status.keyword(), "partial");
    assert!(bad.status.reason().unwrap().contains("injected test panic"));
    // The default policy retries a panic once.
    assert_eq!(bad.retries, 1);

    // Output written before the panic is salvaged into the results
    // file, flagged as partial.
    let text = std::fs::read_to_string(dir.path().join("bad.txt")).expect("bad.txt exists");
    assert!(text.contains("about to explode"));
    assert!(text.contains("[pandora-runner] PARTIAL RESULTS:"));
    assert!(std::fs::read_to_string(dir.path().join("summary.json"))
        .expect("summary written")
        .contains("\"status\": \"partial\""));
    assert!(!report.all_ok());
    assert!(report.none_failed());
}

#[test]
fn wedged_experiment_trips_its_deadline_and_is_not_retried() {
    let dir = TempDir::new("wedge");
    let registry = Registry::new()
        .with(exp("good", steady))
        .with(Experiment {
            deadline: Duration::from_millis(300),
            ..exp("stuck", wedger)
        });
    let report = run_suite(&registry, &options(&dir)).expect("suite runs");

    assert_eq!(report.experiments[0].status, Status::Ok);
    let stuck = &report.experiments[1];
    assert_eq!(stuck.status.keyword(), "partial");
    assert!(stuck.status.reason().unwrap().contains("deadline"));
    // Deadline overruns are never retried: a wedge would wedge again.
    assert_eq!(stuck.retries, 0);
    let text = std::fs::read_to_string(dir.path().join("stuck.txt")).expect("stuck.txt");
    assert!(text.contains("entering the tar pit"));
}

#[test]
fn transient_failure_recovers_on_retry() {
    let dir = TempDir::new("flaky");
    FLAKY_CALLS.store(0, Ordering::SeqCst);
    let registry = Registry::new().with(exp("flaky", flaky));
    let report = run_suite(
        &registry,
        &SuiteOptions {
            retry: RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
            ..options(&dir)
        },
    )
    .expect("suite runs");
    assert_eq!(report.experiments[0].status, Status::Ok);
    assert_eq!(report.experiments[0].retries, 1);
}

#[test]
fn resume_skips_completed_work_and_reverifies_byte_identical_output() {
    let dir = TempDir::new("resume");
    let registry = Registry::new()
        .with(exp("a", steady))
        .with(exp("b", steady))
        .with(exp("c", steady));
    let first = run_suite(&registry, &options(&dir)).expect("first run");
    assert!(first.all_ok());
    let archived = std::fs::read_to_string(dir.path().join("b.txt")).expect("b.txt");

    let resumed = run_suite(
        &registry,
        &SuiteOptions {
            resume: true,
            reverify: 1,
            ..options(&dir)
        },
    )
    .expect("resume run");
    assert!(resumed.all_ok());
    // First completed entry is re-run for determinism; the rest are
    // taken from the journal without re-running.
    assert!(resumed.experiments[0].reverified);
    assert!(!resumed.experiments[0].resumed);
    assert!(resumed.experiments[1].resumed);
    assert!(resumed.experiments[2].resumed);
    // Byte-identical re-verification and untouched archives.
    assert_eq!(
        std::fs::read_to_string(dir.path().join("b.txt")).expect("b.txt"),
        archived
    );
}

#[test]
fn resume_tolerates_a_torn_journal_tail_and_reruns_the_lost_entry() {
    let dir = TempDir::new("torn");
    let registry = Registry::new()
        .with(exp("a", steady))
        .with(exp("b", steady));
    run_suite(&registry, &options(&dir)).expect("first run");

    // Simulate a crash mid-append: chop bytes off the final journal
    // line so it no longer parses.
    let journal_path = dir.path().join(".runall.journal");
    let bytes = std::fs::read(&journal_path).expect("journal");
    std::fs::write(&journal_path, &bytes[..bytes.len() - 9]).expect("truncate");

    let resumed = run_suite(
        &registry,
        &SuiteOptions {
            resume: true,
            reverify: 0,
            ..options(&dir)
        },
    )
    .expect("resume tolerates torn tail");
    assert!(resumed.all_ok());
    assert!(resumed.experiments[0].resumed, "intact entry is skipped");
    assert!(!resumed.experiments[1].resumed, "torn entry is re-run");
}

#[test]
fn resume_is_refused_when_the_run_identity_changes() {
    let dir = TempDir::new("refuse");
    let registry = Registry::new().with(exp("a", steady));
    run_suite(&registry, &options(&dir)).expect("first run");

    // Different seed -> different manifest -> refuse.
    let err = run_suite(
        &registry,
        &SuiteOptions {
            resume: true,
            seed: 99,
            ..options(&dir)
        },
    )
    .expect_err("seed change must refuse resume");
    assert!(matches!(err, SuiteError::ResumeRefused(_)));

    // Different profile -> refuse.
    let err = run_suite(
        &registry,
        &SuiteOptions {
            resume: true,
            profile: Profile::Smoke,
            ..options(&dir)
        },
    )
    .expect_err("profile change must refuse resume");
    assert!(matches!(err, SuiteError::ResumeRefused(_)));

    // Changed experiment fingerprint (e.g. a SimConfig change) ->
    // different run hash -> refuse.
    let reconfigured = Registry::new().with(Experiment {
        fingerprint: || 0xBEEF,
        ..exp("a", steady)
    });
    let err = run_suite(
        &reconfigured,
        &SuiteOptions {
            resume: true,
            ..options(&dir)
        },
    )
    .expect_err("fingerprint change must refuse resume");
    assert!(matches!(err, SuiteError::ResumeRefused(_)));
}

#[test]
fn reverify_detects_nondeterministic_output_and_fails_the_suite() {
    static CALLS: AtomicU32 = AtomicU32::new(0);
    fn drifting(ctx: &Ctx) -> Result<(), Failure> {
        outln!(ctx, "run #{}", CALLS.fetch_add(1, Ordering::SeqCst));
        Ok(())
    }
    let dir = TempDir::new("drift");
    let registry = Registry::new().with(exp("drifting", drifting));
    run_suite(&registry, &options(&dir)).expect("first run");

    let resumed = run_suite(
        &registry,
        &SuiteOptions {
            resume: true,
            reverify: 1,
            ..options(&dir)
        },
    )
    .expect("suite itself survives");
    let row = &resumed.experiments[0];
    assert_eq!(row.status.keyword(), "failed");
    assert!(row
        .status
        .reason()
        .unwrap()
        .contains("determinism re-verification failed"));
    assert!(!resumed.none_failed());
}

#[test]
fn glob_selection_limits_the_suite_and_its_manifest() {
    let dir = TempDir::new("only");
    let registry = Registry::new()
        .with(exp("fig_one", steady))
        .with(exp("fig_two", steady))
        .with(exp("table_one", steady));
    let report = run_suite(
        &registry,
        &SuiteOptions {
            only: Some("fig_*".to_string()),
            ..options(&dir)
        },
    )
    .expect("suite runs");
    let names: Vec<&str> = report.experiments.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, ["fig_one", "fig_two"]);
    assert!(!dir.path().join("table_one.txt").exists());

    // Resuming with a different selection is a different run identity.
    let err = run_suite(
        &registry,
        &SuiteOptions {
            only: Some("table_*".to_string()),
            resume: true,
            ..options(&dir)
        },
    )
    .expect_err("selection change must refuse resume");
    assert!(matches!(err, SuiteError::ResumeRefused(_)));
}

#[test]
fn parallel_suite_completes_every_experiment_exactly_once() {
    let dir = TempDir::new("parallel");
    let mut registry = Registry::new();
    for name in [
        "p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8", "p9",
    ] {
        registry = registry.with(exp(name, steady));
    }
    let report = run_suite(
        &registry,
        &SuiteOptions {
            jobs: 4,
            ..options(&dir)
        },
    )
    .expect("suite runs");
    assert!(report.all_ok());
    assert_eq!(report.experiments.len(), 10);
    // Reports come back in registry order regardless of completion order.
    let names: Vec<&str> = report.experiments.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(
        names,
        ["p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8", "p9"]
    );
    for name in &names {
        assert!(dir.path().join(format!("{name}.txt")).exists());
    }
}

#[test]
fn circuit_breaker_opens_after_repeated_panics_and_degrades() {
    let dir = TempDir::new("breaker");
    let registry = Registry::new().with(exp("bad", panicker));
    let report = run_suite(
        &registry,
        &SuiteOptions {
            retry: RetryPolicy {
                max_attempts: 5,
                ..RetryPolicy::default()
            },
            breaker_threshold: 2,
            ..options(&dir)
        },
    )
    .expect("suite runs");

    let bad = &report.experiments[0];
    assert_eq!(bad.status.keyword(), "degraded");
    assert!(bad.status.reason().unwrap().contains("circuit breaker"));
    // Two attempts panicked (tripping the breaker), the remaining three
    // were skipped: only one retry was consumed.
    assert_eq!(bad.retries, 1);
    assert_eq!(report.health.breakers_open, vec!["bad".to_string()]);
    assert_eq!(report.degraded_count(), 1);
    assert!(report.none_failed(), "degraded is not failed");
    let summary = std::fs::read_to_string(dir.path().join("summary.json")).unwrap();
    assert!(summary.contains("\"status\": \"degraded\""));
    assert!(summary.contains("\"breakers_open\": [\"bad\"]"));
}

#[test]
fn wedged_worker_is_replaced_and_the_suite_continues() {
    let dir = TempDir::new("respawn");
    let registry = Registry::new()
        .with(Experiment {
            deadline: Duration::from_millis(300),
            ..exp("stuck", wedger)
        })
        .with(exp("good", steady));
    let report = run_suite(
        &registry,
        &SuiteOptions {
            breaker_threshold: 1,
            ..options(&dir)
        },
    )
    .expect("suite runs");

    // The wedge is recorded partial, and a *replacement* worker runs
    // the remaining experiment to completion.
    assert_eq!(report.experiments[0].status.keyword(), "partial");
    assert_eq!(report.experiments[1].status, Status::Ok);
    assert_eq!(report.health.workers_abandoned, 1);
    assert!(report.health.worker_restarts >= 1);
    // Threshold 1: the single deadline failure opened stuck's breaker.
    assert_eq!(report.health.breakers_open, vec!["stuck".to_string()]);
    let summary = std::fs::read_to_string(dir.path().join("summary.json")).unwrap();
    assert!(summary.contains("\"health\": {"));
    assert!(summary.contains("\"workers_abandoned\": 1"));
}

#[test]
fn bounded_queue_defers_admission_without_losing_jobs() {
    let dir = TempDir::new("admission");
    let mut registry = Registry::new();
    for name in ["q0", "q1", "q2", "q3", "q4", "q5", "q6", "q7"] {
        registry = registry.with(exp(name, steady));
    }
    let report = run_suite(
        &registry,
        &SuiteOptions {
            jobs: 2,
            queue_capacity: Some(1),
            ..options(&dir)
        },
    )
    .expect("suite runs");
    assert!(report.all_ok(), "every deferred job still ran");
    assert_eq!(report.experiments.len(), 8);
    assert!(
        report.health.admission_deferrals > 0,
        "a capacity-1 queue must defer admission at least once"
    );
}

#[test]
fn pool_exhaustion_degrades_remaining_jobs_instead_of_hanging() {
    let dir = TempDir::new("exhausted");
    let registry = Registry::new()
        .with(Experiment {
            deadline: Duration::from_millis(300),
            ..exp("stuck", wedger)
        })
        .with(exp("good", steady));
    let report = run_suite(
        &registry,
        &SuiteOptions {
            max_worker_restarts: 0,
            ..options(&dir)
        },
    )
    .expect("suite completes without hanging");

    assert_eq!(report.experiments[0].status.keyword(), "partial");
    let good = &report.experiments[1];
    assert_eq!(good.status.keyword(), "degraded");
    assert!(good.status.reason().unwrap().contains("worker pool exhausted"));
    assert_eq!(report.health.worker_restarts, 0);
    assert_eq!(report.health.workers_abandoned, 1);
    assert!(report.none_failed());
}
