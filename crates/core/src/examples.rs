//! The nine example MLDs of the paper's Figures 2 and 3, implemented
//! against the [`Mld`] trait with small self-contained state models.
//!
//! Figure 2 (prior-work structures): single-cycle ALU, zero-skip
//! multiply, random-replacement cache. Figure 3 (the studied
//! optimization classes): operand packing, silent stores, dynamic
//! instruction reuse (Sv), value prediction, register-file compression
//! (0/1 variant), and the 3-level indirect-memory prefetcher.

use std::collections::{HashMap, HashSet};

use crate::mld::{concat_outcomes, InputKind, Mld};

// ---- Minimal state models ---------------------------------------------

/// A cache model for MLD purposes: set geometry plus the set of
/// resident line addresses (replacement state is abstracted away, as in
/// `cache_rand`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CacheModel {
    /// Number of sets (power of two).
    pub sets: u64,
    /// Line size in bytes (power of two).
    pub line: u64,
    /// Resident line addresses.
    pub resident: HashSet<u64>,
}

impl CacheModel {
    /// An empty cache.
    #[must_use]
    pub fn new(sets: u64, line: u64) -> CacheModel {
        assert!(sets.is_power_of_two() && line.is_power_of_two());
        CacheModel {
            sets,
            line,
            resident: HashSet::new(),
        }
    }

    /// The set index of `addr` (the paper's `set(.)`).
    #[must_use]
    pub fn set(&self, addr: u64) -> u64 {
        (addr / self.line) % self.sets
    }

    /// Whether the line holding `addr` is resident.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        self.resident.contains(&(addr & !(self.line - 1)))
    }

    /// Marks the line holding `addr` resident.
    pub fn insert(&mut self, addr: u64) {
        self.resident.insert(addr & !(self.line - 1));
    }

    /// The `cache_h(addr, cache)` sub-outcome of Fig 3: `set(addr) + 1`
    /// on a miss, `0` on a hit — with domain `sets + 1`.
    #[must_use]
    pub fn outcome(&self, addr: u64) -> (u64, u64) {
        let v = if self.contains(addr) {
            0
        } else {
            self.set(addr) + 1
        };
        (v, self.sets + 1)
    }
}

/// Flat data memory for MLD purposes.
pub type DataMemory = HashMap<u64, u64>;

// ---- Figure 2 ---------------------------------------------------------

/// Example 1: a single-cycle ALU — one observable outcome for every
/// operand assignment, i.e. Safe.
pub struct SingleCycleAlu;

impl Mld for SingleCycleAlu {
    type Input = (u64, u64);
    fn name(&self) -> &'static str {
        "single_cycle_alu"
    }
    fn signature(&self) -> &'static [InputKind] {
        &[InputKind::Inst]
    }
    fn outcome(&self, _input: &(u64, u64)) -> u64 {
        0
    }
}

/// Example 2: a zero-skip multiplier — the skip fires iff either
/// operand is zero, creating two distinguishable outcomes.
pub struct ZeroSkipMul;

impl Mld for ZeroSkipMul {
    type Input = (u64, u64);
    fn name(&self) -> &'static str {
        "zero_skip_mul"
    }
    fn signature(&self) -> &'static [InputKind] {
        &[InputKind::Inst]
    }
    fn outcome(&self, &(a, b): &(u64, u64)) -> u64 {
        u64::from(a == 0 || b == 0)
    }
}

/// Example 3: a cache without shared memory under random replacement —
/// `set(addr) + 1` outcomes on a miss, one more for a hit.
pub struct CacheRand;

impl Mld for CacheRand {
    type Input = (u64, CacheModel);
    fn name(&self) -> &'static str {
        "cache_rand"
    }
    fn signature(&self) -> &'static [InputKind] {
        &[InputKind::Inst, InputKind::Uarch]
    }
    fn outcome(&self, (addr, cache): &(u64, CacheModel)) -> u64 {
        cache.outcome(*addr).0
    }
}

// ---- Figure 3 ---------------------------------------------------------

/// Example 4: arithmetic-unit operand packing — two co-located
/// instructions pack iff all four operands are narrow (`msb < 16`).
pub struct OperandPacking;

impl Mld for OperandPacking {
    type Input = ((u64, u64), (u64, u64));
    fn name(&self) -> &'static str {
        "operand_packing"
    }
    fn signature(&self) -> &'static [InputKind] {
        &[InputKind::Inst, InputKind::Inst]
    }
    fn outcome(&self, &((a0, a1), (b0, b1)): &Self::Input) -> u64 {
        let narrow = |v: u64| v < (1 << 16);
        u64::from(narrow(a0) && narrow(a1) && narrow(b0) && narrow(b1))
    }
}

/// Example 5: silent stores — the store is silent iff its data equals
/// the contents of data memory at its address.
pub struct SilentStores;

/// Input: (store address, store data, data memory).
impl Mld for SilentStores {
    type Input = (u64, u64, DataMemory);
    fn name(&self) -> &'static str {
        "silent_stores"
    }
    fn signature(&self) -> &'static [InputKind] {
        &[InputKind::Inst, InputKind::Arch]
    }
    fn outcome(&self, (addr, data, mem): &Self::Input) -> u64 {
        u64::from(mem.get(addr).copied().unwrap_or(0) == *data)
    }
}

/// Example 6: dynamic instruction reuse, Sv variant — a hit iff all
/// operand values match the memoized instance at this pc.
pub struct InstructionReuse;

/// Input: (pc, operand values, reuse buffer keyed by pc).
impl Mld for InstructionReuse {
    type Input = (u64, [u64; 2], HashMap<u64, [u64; 2]>);
    fn name(&self) -> &'static str {
        "instruction_reuse"
    }
    fn signature(&self) -> &'static [InputKind] {
        &[InputKind::Inst, InputKind::Uarch]
    }
    fn outcome(&self, (pc, args, buffer): &Self::Input) -> u64 {
        u64::from(buffer.get(pc).is_some_and(|entry| entry == args))
    }
}

/// An entry of the value-prediction table: confidence and prediction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VpEntry {
    /// Saturating confidence counter (bounded domain).
    pub conf: u64,
    /// The predicted value.
    pub prediction: u64,
}

/// Example 7: value prediction — leaks the confidence *and* whether the
/// prediction equals the instruction's result, concatenated.
pub struct ValuePrediction {
    /// The confidence counter's domain size (e.g. 4 for 2-bit).
    pub conf_domain: u64,
}

/// Input: (pc, destination value, prediction table).
impl Mld for ValuePrediction {
    type Input = (u64, u64, HashMap<u64, VpEntry>);
    fn name(&self) -> &'static str {
        "v_prediction"
    }
    fn signature(&self) -> &'static [InputKind] {
        &[InputKind::Inst, InputKind::Uarch]
    }
    fn outcome(&self, (pc, dst, table): &Self::Input) -> u64 {
        let e = table.get(pc).copied().unwrap_or(VpEntry {
            conf: 0,
            prediction: 0,
        });
        concat_outcomes(&[
            (u64::from(e.prediction == *dst), 2),
            (e.conf.min(self.conf_domain - 1), self.conf_domain),
        ])
    }
}

/// Example 8: register-file compression, 0/1 variant — leaks, for every
/// register, whether its value is ≤ 1, concatenated over the file.
pub struct RfCompression;

impl Mld for RfCompression {
    type Input = Vec<u64>;
    fn name(&self) -> &'static str {
        "rf_compression"
    }
    fn signature(&self) -> &'static [InputKind] {
        &[InputKind::Arch]
    }
    fn outcome(&self, regs: &Vec<u64>) -> u64 {
        let parts: Vec<(u64, u64)> = regs.iter().map(|&r| (u64::from(r <= 1), 2)).collect();
        concat_outcomes(&parts)
    }
}

/// The 3-level IMP's persistent state (Fig 3, Example 9).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ImpState {
    /// `&Z[0]` plus the current prefetch offset `i + Δ`, pre-added.
    pub base_z: u64,
    /// `&Y[0]`.
    pub base_y: u64,
    /// `&X[0]`.
    pub base_x: u64,
    /// The starting offset `s = i + Δ` in bytes.
    pub start: u64,
}

/// Example 9: the 3-level indirect-memory prefetcher — concatenates the
/// cache outcomes of the three dependent prefetches
/// `Z[i+Δ]`, `Y[Z[i+Δ]]`, `X[Y[Z[i+Δ]]]`.
pub struct Im3lPrefetcher;

/// Input: (prefetcher state, cache, data memory).
impl Mld for Im3lPrefetcher {
    type Input = (ImpState, CacheModel, DataMemory);
    fn name(&self) -> &'static str {
        "im3l_prefetcher"
    }
    fn signature(&self) -> &'static [InputKind] {
        &[InputKind::Uarch, InputKind::Uarch, InputKind::Arch]
    }
    fn outcome(&self, (imp, cache, mem): &Self::Input) -> u64 {
        let read = |a: u64| mem.get(&a).copied().unwrap_or(0);
        let addr_z = imp.base_z + imp.start;
        let z = read(addr_z);
        let addr_y = imp.base_y.wrapping_add(z);
        let y = read(addr_y);
        let addr_x = imp.base_x.wrapping_add(y);
        let (o_z, d) = cache.outcome(addr_z);
        let (o_y, _) = cache.outcome(addr_y);
        let (o_x, _) = cache.outcome(addr_x);
        concat_outcomes(&[(o_x, d), (o_y, d), (o_z, d)])
    }
}

/// Beyond the paper's nine figures: an MLD for *content-directed*
/// prefetching (the other DMP family, Cooksey et al.\[11\]) — the
/// prefetcher chases every pointer-shaped value in a touched line, so
/// the outcome concatenates one cache sub-outcome per candidate slot.
pub struct ContentDirectedPrefetch {
    /// Line size in bytes (8-byte candidate slots).
    pub line: u64,
    /// Highest valid memory address (pointer-shape bound).
    pub mem_limit: u64,
}

/// Input: (line base address, cache, data memory).
impl Mld for ContentDirectedPrefetch {
    type Input = (u64, CacheModel, DataMemory);
    fn name(&self) -> &'static str {
        "content_directed_prefetch"
    }
    fn signature(&self) -> &'static [InputKind] {
        &[InputKind::Uarch, InputKind::Arch]
    }
    fn outcome(&self, (line_base, cache, mem): &Self::Input) -> u64 {
        let mut parts = Vec::new();
        for off in (0..self.line).step_by(8) {
            let v = mem.get(&(line_base + off)).copied().unwrap_or(0);
            let pointer_like = v != 0 && v % 8 == 0 && v < self.mem_limit;
            let (o, d) = if pointer_like {
                cache.outcome(v)
            } else {
                (0, cache.sets + 1)
            };
            parts.push((o, d));
        }
        concat_outcomes(&parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mld::{capacity_bits, partition_size};

    #[test]
    fn single_cycle_alu_is_safe() {
        let inputs = (0..32u64).flat_map(|a| (0..32u64).map(move |b| (a, b)));
        assert_eq!(partition_size(&SingleCycleAlu, inputs), 1);
        assert_eq!(capacity_bits(1), 0.0);
    }

    #[test]
    fn zero_skip_mul_partitions_in_two() {
        let inputs = (0..32u64).flat_map(|a| (0..32u64).map(move |b| (a, b)));
        assert_eq!(partition_size(&ZeroSkipMul, inputs), 2);
        assert_eq!(ZeroSkipMul.outcome(&(0, 5)), 1);
        assert_eq!(ZeroSkipMul.outcome(&(5, 0)), 1);
        assert_eq!(ZeroSkipMul.outcome(&(5, 5)), 0);
    }

    #[test]
    fn cache_rand_has_sets_plus_one_outcomes() {
        let sets = 8u64;
        let inputs = (0..2048u64).step_by(64).flat_map(|addr| {
            // Enumerate both the cached and the uncached case.
            let cold = CacheModel::new(sets, 64);
            let mut warm = CacheModel::new(sets, 64);
            warm.insert(addr);
            [(addr, cold), (addr, warm)]
        });
        let n = partition_size(&CacheRand, inputs);
        assert_eq!(n as u64, sets + 1);
        assert!((capacity_bits(n) - 3.17).abs() < 0.01, "log2(9) ≈ 3.17");
    }

    #[test]
    fn operand_packing_needs_all_four_narrow() {
        let wide = 1u64 << 20;
        assert_eq!(OperandPacking.outcome(&((1, 2), (3, 4))), 1);
        assert_eq!(OperandPacking.outcome(&((wide, 2), (3, 4))), 0);
        assert_eq!(OperandPacking.outcome(&((1, 2), (3, wide))), 0);
    }

    #[test]
    fn silent_stores_equality() {
        let mut mem = DataMemory::new();
        mem.insert(0x40, 7);
        assert_eq!(SilentStores.outcome(&(0x40, 7, mem.clone())), 1);
        assert_eq!(SilentStores.outcome(&(0x40, 8, mem.clone())), 0);
        assert_eq!(SilentStores.outcome(&(0x80, 0, mem)), 1, "untouched = 0");
    }

    #[test]
    fn instruction_reuse_matches_on_values() {
        let mut buf = HashMap::new();
        buf.insert(100u64, [3u64, 4u64]);
        assert_eq!(InstructionReuse.outcome(&(100, [3, 4], buf.clone())), 1);
        assert_eq!(InstructionReuse.outcome(&(100, [3, 5], buf.clone())), 0);
        assert_eq!(InstructionReuse.outcome(&(101, [3, 4], buf)), 0);
    }

    #[test]
    fn value_prediction_concatenates_conf_and_match() {
        let vp = ValuePrediction { conf_domain: 4 };
        let mut table = HashMap::new();
        table.insert(
            10u64,
            VpEntry {
                conf: 3,
                prediction: 42,
            },
        );
        let hit = vp.outcome(&(10, 42, table.clone()));
        let miss = vp.outcome(&(10, 41, table.clone()));
        assert_ne!(hit, miss);
        // Different confidences are also distinct outcomes.
        table.insert(
            10,
            VpEntry {
                conf: 1,
                prediction: 42,
            },
        );
        assert_ne!(vp.outcome(&(10, 42, table)), hit);
    }

    #[test]
    fn rf_compression_has_exponential_partition() {
        // 4 registers, each in {0, 2}: 2^4 distinct outcomes.
        let inputs = (0..16u64).map(|mask| {
            (0..4).map(|i| if (mask >> i) & 1 == 1 { 0u64 } else { 2 }).collect()
        });
        let n = partition_size(&RfCompression, inputs);
        assert_eq!(n, 16);
        assert!((capacity_bits(n) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn im3l_outcome_depends_on_memory_contents() {
        // Two memories differing only in a *private* value produce
        // different outcomes: the prefetcher leaks data at rest.
        let cache = CacheModel::new(8, 64);
        let imp = ImpState {
            base_z: 0x1000,
            base_y: 0x2000,
            base_x: 0x4000,
            start: 0,
        };
        let mut mem1 = DataMemory::new();
        mem1.insert(0x1000, 0x100); // Z[i+Δ] = target offset
        mem1.insert(0x2100, 0x40); // private Y[target] = 0x40
        let mut mem2 = mem1.clone();
        mem2.insert(0x2100, 0x80); // different private value
        let o1 = Im3lPrefetcher.outcome(&(imp.clone(), cache.clone(), mem1));
        let o2 = Im3lPrefetcher.outcome(&(imp, cache, mem2));
        assert_ne!(o1, o2);
    }

    #[test]
    fn cdp_outcome_depends_on_pointer_values_at_rest() {
        let mld = ContentDirectedPrefetch {
            line: 64,
            mem_limit: 1 << 16,
        };
        let cache = CacheModel::new(8, 64);
        let mut mem1 = DataMemory::new();
        mem1.insert(0x1000, 0x2000); // a private pointer
        let mut mem2 = DataMemory::new();
        mem2.insert(0x1000, 0x3040); // a different private pointer
        let o1 = mld.outcome(&(0x1000, cache.clone(), mem1));
        let o2 = mld.outcome(&(0x1000, cache.clone(), mem2));
        assert_ne!(o1, o2, "pointer value at rest modulates the outcome");
        // Non-pointer data is invisible.
        let mut mem3 = DataMemory::new();
        mem3.insert(0x1000, 0x2001); // unaligned: not pointer-shaped
        let mut mem4 = DataMemory::new();
        mem4.insert(0x1000, 0x3041);
        assert_eq!(
            mld.outcome(&(0x1000, cache.clone(), mem3)),
            mld.outcome(&(0x1000, cache, mem4))
        );
    }

    #[test]
    fn im3l_capacity_is_cubic_in_cache_outcome() {
        // Partition bound: (sets + 1)^3 combinations are representable.
        let sets = 8u64;
        let d = sets + 1;
        assert_eq!(d * d * d, 729);
        assert!((capacity_bits(729_usize) - 9.51).abs() < 0.01);
    }
}
