//! Microarchitectural leakage descriptors (MLDs), §IV-A.
//!
//! An MLD for a microarchitectural optimization is a *stateless
//! function* that specifies (1) the inputs needed to describe the
//! optimization's functional behaviour — each typed as a dynamic
//! instruction (`Inst`), persistent microarchitectural state (`Uarch`)
//! or architectural state (`Arch`) — and (2) a many-to-one mapping from
//! input assignments to **distinct observable outcomes**. Given a
//! concrete assignment, the MLD returns the id of the outcome the
//! assignment produces; the mapping partitions the input space, and
//! log2 of the partition count bounds the channel capacity (§IV-A3).

use std::collections::HashSet;
use std::fmt;

/// The type of one MLD input, as in the paper's definitions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InputKind {
    /// An in-flight dynamic instruction.
    Inst,
    /// ISA-invisible persistent microarchitectural state (predictors,
    /// caches, memoization tables, prefetcher state).
    Uarch,
    /// ISA-visible persistent architectural state (the register file,
    /// data memory).
    Arch,
}

impl fmt::Display for InputKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputKind::Inst => write!(f, "Inst"),
            InputKind::Uarch => write!(f, "Uarch"),
            InputKind::Arch => write!(f, "Arch"),
        }
    }
}

/// A microarchitectural leakage descriptor: a named, typed, stateless
/// map from input assignments to observable-outcome ids.
pub trait Mld {
    /// The concrete type of one input assignment.
    type Input;

    /// The descriptor's name (e.g. `"zero_skip_mul"`).
    fn name(&self) -> &'static str;

    /// The input signature — the basis of the paper's Table II
    /// classification.
    fn signature(&self) -> &'static [InputKind];

    /// The outcome id for one concrete input assignment.
    fn outcome(&self, input: &Self::Input) -> u64;
}

/// The number of distinct outcomes an MLD produces over an input
/// enumeration — |S|, the size of the partition.
pub fn partition_size<M: Mld>(mld: &M, inputs: impl IntoIterator<Item = M::Input>) -> usize {
    let outcomes: HashSet<u64> = inputs.into_iter().map(|i| mld.outcome(&i)).collect();
    outcomes.len()
}

/// The channel-capacity upper bound in bits: log2 |S| (§IV-A3).
#[must_use]
pub fn capacity_bits(partition_size: usize) -> f64 {
    if partition_size == 0 {
        0.0
    } else {
        (partition_size as f64).log2()
    }
}

/// The paper's `||` concatenation operator (Fig 3 caption): projects a
/// sequence of sub-outcomes, each with a known domain size, onto the
/// naturals — `d_{N-1} || … || d_0 = Σ d_i · Π_{j<i} D_j`. Informally:
/// the microarchitecture leaks each component independently.
///
/// `parts` are `(value, domain_size)` pairs ordered `d_0` first.
///
/// # Panics
///
/// Panics if any value is outside its declared domain.
#[must_use]
pub fn concat_outcomes(parts: &[(u64, u64)]) -> u64 {
    let mut acc = 0u64;
    let mut radix = 1u64;
    for &(value, domain) in parts {
        assert!(value < domain, "outcome {value} outside domain {domain}");
        acc += value * radix;
        radix = radix.saturating_mul(domain);
    }
    acc
}

/// The classification of an MLD by its input signature — the axes of
/// the paper's Table II.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MldClass {
    /// Only in-flight instructions: stateless instruction-centric
    /// (§IV-B).
    StatelessInst,
    /// Instructions interacting with microarchitectural state (§IV-C).
    StatefulInstUarch,
    /// Instructions interacting with architectural state (§IV-C).
    StatefulInstArch,
    /// Architectural state alone (possibly via auxiliary µarch state):
    /// memory-centric (§IV-D).
    MemoryCentric,
}

impl fmt::Display for MldClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MldClass::StatelessInst => write!(f, "Stateless instruction-centric"),
            MldClass::StatefulInstUarch => write!(f, "Stateful instruction-centric (Uarch)"),
            MldClass::StatefulInstArch => write!(f, "Stateful instruction-centric (Arch)"),
            MldClass::MemoryCentric => write!(f, "Memory-centric (Arch)"),
        }
    }
}

/// Classifies a signature into the Table II taxonomy.
#[must_use]
pub fn classify(signature: &[InputKind]) -> MldClass {
    let has_inst = signature.contains(&InputKind::Inst);
    let has_uarch = signature.contains(&InputKind::Uarch);
    let has_arch = signature.contains(&InputKind::Arch);
    match (has_inst, has_uarch, has_arch) {
        (true, false, false) => MldClass::StatelessInst,
        (true, true, _) => MldClass::StatefulInstUarch,
        (true, false, true) => MldClass::StatefulInstArch,
        (false, _, _) => MldClass::MemoryCentric,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Parity;
    impl Mld for Parity {
        type Input = u64;
        fn name(&self) -> &'static str {
            "parity"
        }
        fn signature(&self) -> &'static [InputKind] {
            &[InputKind::Inst]
        }
        fn outcome(&self, input: &u64) -> u64 {
            input & 1
        }
    }

    #[test]
    fn partition_and_capacity() {
        let n = partition_size(&Parity, 0..100u64);
        assert_eq!(n, 2);
        assert!((capacity_bits(n) - 1.0).abs() < 1e-12);
        assert_eq!(capacity_bits(0), 0.0);
        assert_eq!(capacity_bits(1), 0.0);
    }

    #[test]
    fn concat_is_positional() {
        // d0 in domain 3, d1 in domain 2: (d1, d0) -> d1*3 + d0.
        assert_eq!(concat_outcomes(&[(2, 3), (1, 2)]), 5);
        assert_eq!(concat_outcomes(&[(0, 3), (0, 2)]), 0);
        // All combinations are distinct.
        let mut seen = std::collections::HashSet::new();
        for d0 in 0..3 {
            for d1 in 0..2 {
                assert!(seen.insert(concat_outcomes(&[(d0, 3), (d1, 2)])));
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn concat_validates_domains() {
        let _ = concat_outcomes(&[(3, 3)]);
    }

    #[test]
    fn classification_matches_table_ii_axes() {
        use InputKind::{Arch, Inst, Uarch};
        assert_eq!(classify(&[Inst]), MldClass::StatelessInst);
        assert_eq!(classify(&[Inst, Inst]), MldClass::StatelessInst);
        assert_eq!(classify(&[Inst, Uarch]), MldClass::StatefulInstUarch);
        assert_eq!(classify(&[Inst, Arch]), MldClass::StatefulInstArch);
        assert_eq!(classify(&[Arch]), MldClass::MemoryCentric);
        assert_eq!(classify(&[Uarch, Uarch, Arch]), MldClass::MemoryCentric);
    }
}
