//! The security lattice of §IV-A2: `L ⊑ C ⊑ H` — public data flows
//! below attacker-controlled data flows below private data.
//!
//! The paper uses the lattice to reason about preconditioning: what an
//! active attacker learns from an MLD outcome depends on which inputs
//! are public, attacker-controlled, or private (e.g. the zero-skip
//! multiply leaks *whether the private operand is zero* exactly when
//! the other operand is attacker-controlled and set non-zero).

use std::fmt;

/// A security label.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Label {
    /// Public data (`L`).
    Public,
    /// Attacker-controlled data (`C`).
    AttackerControlled,
    /// Private data (`H`).
    Private,
}

impl Label {
    /// Whether data at this label may flow to `other` (`self ⊑ other`).
    #[must_use]
    pub fn flows_to(self, other: Label) -> bool {
        self <= other
    }

    /// The least upper bound of two labels.
    #[must_use]
    pub fn join(self, other: Label) -> Label {
        self.max(other)
    }

    /// The greatest lower bound of two labels.
    #[must_use]
    pub fn meet(self, other: Label) -> Label {
        self.min(other)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Public => write!(f, "L"),
            Label::AttackerControlled => write!(f, "C"),
            Label::Private => write!(f, "H"),
        }
    }
}

/// What an equality-style transmitter (silent stores, computation
/// reuse, value prediction — §IV-C4) reveals per experiment, given the
/// labels of its two compared inputs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EqualityLeak {
    /// Nothing private is involved.
    Nothing,
    /// The attacker learns whether the private value equals a value it
    /// chose — an oracle it can replay with different choices.
    ChosenEquality,
    /// The attacker learns whether two private values are equal, but
    /// cannot steer the comparison.
    BlindEquality,
}

/// Classifies the per-experiment leakage of an equality transmitter
/// from its operand labels.
#[must_use]
pub fn equality_leak(a: Label, b: Label) -> EqualityLeak {
    use Label::{AttackerControlled, Private};
    match (a, b) {
        (Private, AttackerControlled) | (AttackerControlled, Private) => {
            EqualityLeak::ChosenEquality
        }
        (Private, _) | (_, Private) => EqualityLeak::BlindEquality,
        _ => EqualityLeak::Nothing,
    }
}

/// Expected number of experiments to learn a `bits`-bit private value
/// through a chosen-equality oracle by exhaustive guessing — the
/// paper's §IV-C4 arithmetic (a 16-bit value takes up to 2^16 tries;
/// the BSAES attack's 8 × 65 536 = 524 288 bound).
#[must_use]
pub fn exhaustive_guesses(bits: u32) -> u64 {
    1u64 << bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use Label::{AttackerControlled, Private, Public};

    #[test]
    fn lattice_order() {
        assert!(Public.flows_to(AttackerControlled));
        assert!(AttackerControlled.flows_to(Private));
        assert!(Public.flows_to(Private));
        assert!(!Private.flows_to(Public));
        assert!(!AttackerControlled.flows_to(Public));
        assert!(Private.flows_to(Private));
    }

    #[test]
    fn join_and_meet() {
        assert_eq!(Public.join(Private), Private);
        assert_eq!(AttackerControlled.join(Public), AttackerControlled);
        assert_eq!(Private.meet(AttackerControlled), AttackerControlled);
    }

    #[test]
    fn equality_leak_classification() {
        assert_eq!(
            equality_leak(Private, AttackerControlled),
            EqualityLeak::ChosenEquality
        );
        assert_eq!(
            equality_leak(AttackerControlled, Private),
            EqualityLeak::ChosenEquality
        );
        assert_eq!(equality_leak(Private, Public), EqualityLeak::BlindEquality);
        assert_eq!(equality_leak(Private, Private), EqualityLeak::BlindEquality);
        assert_eq!(equality_leak(Public, AttackerControlled), EqualityLeak::Nothing);
    }

    #[test]
    fn replay_cost_matches_paper() {
        // §V-A3: 16-bit intermediates, eight of them.
        assert_eq!(exhaustive_guesses(16), 65_536);
        assert_eq!(8 * exhaustive_guesses(16), 524_288);
        // §IV-C4: byte-granularity checks need only 2^8.
        assert_eq!(exhaustive_guesses(8), 256);
    }

    #[test]
    fn display_labels() {
        assert_eq!(Public.to_string(), "L");
        assert_eq!(AttackerControlled.to_string(), "C");
        assert_eq!(Private.to_string(), "H");
    }
}
