#![warn(missing_docs)]

//! # pandora-core
//!
//! The primary contribution of *"Opening Pandora's Box: A Systematic
//! Study of New Ways Microarchitecture Can Leak Private Data"*
//! (ISCA 2021), as a library:
//!
//! * [`mld`] — **microarchitectural leakage descriptors** (§IV-A):
//!   stateless, typed functions from (instruction, µarch state, arch
//!   state) assignments to distinct observable outcomes; partition
//!   enumeration and the log2|S| channel-capacity bound.
//! * [`examples`] — the paper's nine example MLDs (Figures 2 and 3),
//!   from the single-cycle ALU to the 3-level indirect-memory
//!   prefetcher.
//! * [`lattice`] — the `L ⊑ C ⊑ H` security lattice and the
//!   equality-oracle replay analysis of §IV-C4.
//! * [`landscape`] — the leakage landscape: Table I (which program
//!   data each optimization endangers, derived per-column from the
//!   affected-data declarations) and Table II (classification by MLD
//!   signature).
//!
//! ```
//! use pandora_core::examples::ZeroSkipMul;
//! use pandora_core::mld::{capacity_bits, partition_size, Mld};
//!
//! let inputs = (0..16u64).flat_map(|a| (0..16u64).map(move |b| (a, b)));
//! let n = partition_size(&ZeroSkipMul, inputs);
//! assert_eq!(n, 2); // skip vs no-skip
//! assert_eq!(capacity_bits(n), 1.0); // one bit per dynamic multiply
//! ```

pub mod examples;
pub mod lattice;
pub mod landscape;
pub mod mld;

pub use landscape::{render_table1, render_table2, DataItem, Mark, OptClass};
pub use lattice::{equality_leak, EqualityLeak, Label};
pub use mld::{capacity_bits, classify, concat_outcomes, partition_size, InputKind, Mld, MldClass};
