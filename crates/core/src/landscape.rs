//! The leakage landscape: the paper's Table I (what program data each
//! optimization endangers) and Table II (classification by MLD
//! signature), both *generated* from per-optimization declarations.
//!
//! Each optimization class declares its MLD signature and the set of
//! data items its transmitter is a function of. From those, the
//! landscape derives:
//!
//! * Table II — purely from the signature (via [`classify`]);
//! * Table I — by comparing each affected item against the Baseline:
//!   data that was Safe becomes **U** (newly unsafe); data that was
//!   already Unsafe becomes **U′** (a different function of the data
//!   leaks, per the paper's notation).

use std::fmt;

use crate::mld::{classify, InputKind, MldClass};

/// The rows of Table I: which program data is at risk.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DataItem {
    /// Operands of simple integer ops.
    OperandIntSimple,
    /// Operands of integer multiply.
    OperandIntMul,
    /// Operands of integer divide.
    OperandIntDiv,
    /// Operands of floating-point ops.
    OperandFp,
    /// Results of simple integer ops.
    ResultIntSimple,
    /// Results of integer multiply.
    ResultIntMul,
    /// Results of integer divide.
    ResultIntDiv,
    /// Results of floating-point ops.
    ResultFp,
    /// Load addresses.
    AddrLoad,
    /// Store addresses.
    AddrStore,
    /// Load data.
    DataLoad,
    /// Store data.
    DataStore,
    /// Control flow (branch predicates/targets).
    ControlFlow,
    /// The register file, at rest.
    RestRegisterFile,
    /// Data memory, at rest.
    RestDataMemory,
}

impl DataItem {
    /// All rows in the paper's order.
    pub const ALL: [DataItem; 15] = [
        DataItem::OperandIntSimple,
        DataItem::OperandIntMul,
        DataItem::OperandIntDiv,
        DataItem::OperandFp,
        DataItem::ResultIntSimple,
        DataItem::ResultIntMul,
        DataItem::ResultIntDiv,
        DataItem::ResultFp,
        DataItem::AddrLoad,
        DataItem::AddrStore,
        DataItem::DataLoad,
        DataItem::DataStore,
        DataItem::ControlFlow,
        DataItem::RestRegisterFile,
        DataItem::RestDataMemory,
    ];

    /// The row label as printed in Table I.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DataItem::OperandIntSimple => "Operands: Int simple ops",
            DataItem::OperandIntMul => "Operands: Int mul",
            DataItem::OperandIntDiv => "Operands: Int div",
            DataItem::OperandFp => "Operands: FP ops",
            DataItem::ResultIntSimple => "Result: Int simple ops",
            DataItem::ResultIntMul => "Result: Int mul",
            DataItem::ResultIntDiv => "Result: Int div",
            DataItem::ResultFp => "Result: FP ops",
            DataItem::AddrLoad => "Addr: Load",
            DataItem::AddrStore => "Addr: Store",
            DataItem::DataLoad => "Data: Load",
            DataItem::DataStore => "Data: Store",
            DataItem::ControlFlow => "Control flow",
            DataItem::RestRegisterFile => "At rest: Register file",
            DataItem::RestDataMemory => "At rest: Data memory",
        }
    }
}

/// Safety of a data item on the Baseline machine (§II's known attacks).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BaselineSafety {
    /// Safe: no known transmitter is a function of this data.
    Safe,
    /// Unsafe via a known attack (representative citation).
    Unsafe(&'static str),
    /// Safe unless the program contains a speculative-execution gadget
    /// (the ‡ mark on data at rest).
    SafeUnlessSpeculation,
}

/// The Baseline column of Table I.
#[must_use]
pub fn baseline(item: DataItem) -> BaselineSafety {
    use BaselineSafety::{Safe, SafeUnlessSpeculation, Unsafe};
    match item {
        DataItem::OperandIntDiv => Unsafe("Coppens et al. [44]"),
        DataItem::OperandFp => Unsafe("Andrysco et al. [37]"),
        DataItem::AddrLoad | DataItem::AddrStore => Unsafe("Flush+Reload [49]"),
        DataItem::ControlFlow => Unsafe("Acıiçmez et al. [56]"),
        DataItem::RestRegisterFile | DataItem::RestDataMemory => SafeUnlessSpeculation,
        _ => Safe,
    }
}

/// A cell in an optimization's Table I column.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mark {
    /// `-`: no change relative to the Baseline.
    NoChange,
    /// `U`: previously-safe data becomes unsafe.
    NewlyUnsafe,
    /// `U′`: already-unsafe data leaks through a new function / under
    /// new assumptions.
    DifferentlyUnsafe,
}

impl fmt::Display for Mark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mark::NoChange => write!(f, "-"),
            Mark::NewlyUnsafe => write!(f, "U"),
            Mark::DifferentlyUnsafe => write!(f, "U'"),
        }
    }
}

/// The seven optimization classes (Table I columns).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OptClass {
    /// Computation simplification (§IV-B1).
    CompSimplification,
    /// Pipeline compression (§IV-B2).
    PipelineCompression,
    /// Silent stores (§IV-C1).
    SilentStores,
    /// Computation reuse (§IV-C2).
    ComputationReuse,
    /// Value prediction (§IV-C3).
    ValuePrediction,
    /// Register-file compression (§IV-D1).
    RegFileCompression,
    /// Data memory-dependent prefetching (§IV-D2).
    DataMemPrefetching,
}

impl OptClass {
    /// All seven classes in the paper's column order.
    pub const ALL: [OptClass; 7] = [
        OptClass::CompSimplification,
        OptClass::PipelineCompression,
        OptClass::SilentStores,
        OptClass::ComputationReuse,
        OptClass::ValuePrediction,
        OptClass::RegFileCompression,
        OptClass::DataMemPrefetching,
    ];

    /// The paper's acronym for the column header.
    #[must_use]
    pub fn acronym(self) -> &'static str {
        match self {
            OptClass::CompSimplification => "CS",
            OptClass::PipelineCompression => "PC",
            OptClass::SilentStores => "SS",
            OptClass::ComputationReuse => "CR",
            OptClass::ValuePrediction => "VP",
            OptClass::RegFileCompression => "RFC",
            OptClass::DataMemPrefetching => "DMP",
        }
    }

    /// The full name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OptClass::CompSimplification => "Computation simplification",
            OptClass::PipelineCompression => "Pipeline compression",
            OptClass::SilentStores => "Silent stores",
            OptClass::ComputationReuse => "Computation reuse",
            OptClass::ValuePrediction => "Value prediction",
            OptClass::RegFileCompression => "Register-file compression",
            OptClass::DataMemPrefetching => "Data memory-dependent prefetching",
        }
    }

    /// The MLD input signature (from the Fig 3 example of each class) —
    /// the basis for Table II.
    #[must_use]
    pub fn signature(self) -> &'static [InputKind] {
        use InputKind::{Arch, Inst, Uarch};
        match self {
            OptClass::CompSimplification => &[Inst],
            OptClass::PipelineCompression => &[Inst, Inst],
            OptClass::SilentStores => &[Inst, Arch],
            OptClass::ComputationReuse => &[Inst, Uarch],
            OptClass::ValuePrediction => &[Inst, Uarch],
            OptClass::RegFileCompression => &[Arch],
            OptClass::DataMemPrefetching => &[Uarch, Uarch, Arch],
        }
    }

    /// Table II classification, derived from the signature.
    #[must_use]
    pub fn mld_class(self) -> MldClass {
        classify(self.signature())
    }

    /// The data items this class's transmitter is a function of — the
    /// ingredient from which the Table I column is derived (§IV-B–D).
    #[must_use]
    pub fn affected_items(self) -> &'static [DataItem] {
        match self {
            // Simplification conditions are functions of operand values
            // of both simple and long-latency integer/FP operations.
            OptClass::CompSimplification => &[
                DataItem::OperandIntSimple,
                DataItem::OperandIntMul,
                DataItem::OperandIntDiv,
                DataItem::OperandFp,
            ],
            // Packing fires on narrow *integer* operands (FP units are
            // not packed); significance compression additionally makes
            // register-file contents (at rest) width-observable.
            OptClass::PipelineCompression => &[
                DataItem::OperandIntSimple,
                DataItem::OperandIntMul,
                DataItem::OperandIntDiv,
                DataItem::RestRegisterFile,
            ],
            // The silent check compares in-flight store data against
            // memory: both endpoints leak (§IV-C4 symmetry).
            OptClass::SilentStores => &[DataItem::DataStore, DataItem::RestDataMemory],
            // Sv reuse keys on operand values of memoized instructions.
            OptClass::ComputationReuse => &[
                DataItem::OperandIntSimple,
                DataItem::OperandIntMul,
                DataItem::OperandIntDiv,
                DataItem::OperandFp,
            ],
            // Prediction verifies *results*; load values are the primary
            // target.
            OptClass::ValuePrediction => &[
                DataItem::ResultIntSimple,
                DataItem::ResultIntMul,
                DataItem::ResultIntDiv,
                DataItem::ResultFp,
                DataItem::DataLoad,
            ],
            // Compression checks result values against register-file
            // contents: results in flight and the file at rest.
            OptClass::RegFileCompression => &[
                DataItem::ResultIntSimple,
                DataItem::ResultIntMul,
                DataItem::ResultIntDiv,
                DataItem::ResultFp,
                DataItem::RestRegisterFile,
            ],
            // The prefetcher dereferences data memory directly.
            OptClass::DataMemPrefetching => &[DataItem::RestDataMemory],
        }
    }

    /// The Table I cell for `item` in this class's column, derived by
    /// comparing the affected set against the Baseline.
    #[must_use]
    pub fn mark(self, item: DataItem) -> Mark {
        if !self.affected_items().contains(&item) {
            return Mark::NoChange;
        }
        match baseline(item) {
            BaselineSafety::Unsafe(_) => Mark::DifferentlyUnsafe,
            BaselineSafety::Safe | BaselineSafety::SafeUnlessSpeculation => Mark::NewlyUnsafe,
        }
    }
}

/// Renders Table I as aligned text (one row per [`DataItem`]).
#[must_use]
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<26} {:>9}", "Data item", "Baseline"));
    for c in OptClass::ALL {
        out.push_str(&format!(" {:>4}", c.acronym()));
    }
    out.push('\n');
    for item in DataItem::ALL {
        let base = match baseline(item) {
            BaselineSafety::Safe => "S".to_string(),
            BaselineSafety::Unsafe(_) => "U".to_string(),
            BaselineSafety::SafeUnlessSpeculation => "S‡".to_string(),
        };
        out.push_str(&format!("{:<26} {:>9}", item.label(), base));
        for c in OptClass::ALL {
            out.push_str(&format!(" {:>4}", c.mark(item).to_string()));
        }
        out.push('\n');
    }
    out
}

/// Renders Table II: per class, the MLD-signature classification.
#[must_use]
pub fn render_table2() -> String {
    let mut out = String::new();
    for c in OptClass::ALL {
        let sig: Vec<String> = c.signature().iter().map(ToString::to_string).collect();
        out.push_str(&format!(
            "{:<34} ({:<18}) -> {}\n",
            c.name(),
            sig.join(", "),
            c.mld_class()
        ));
    }
    out
}

#[cfg(test)]
#[allow(clippy::unsafe_removed_from_name)]
mod tests {
    use super::*;
    use DataItem as D;
    use Mark::{DifferentlyUnsafe as UP, NewlyUnsafe as U, NoChange as N};
    use OptClass as O;

    /// The full Table I from the paper, row-major over the seven
    /// optimization columns (CS, PC, SS, CR, VP, RFC, DMP).
    const PAPER_TABLE1: [(D, [Mark; 7]); 15] = [
        (D::OperandIntSimple, [U, U, N, U, N, N, N]),
        (D::OperandIntMul, [U, U, N, U, N, N, N]),
        (D::OperandIntDiv, [UP, UP, N, UP, N, N, N]),
        (D::OperandFp, [UP, N, N, UP, N, N, N]),
        (D::ResultIntSimple, [N, N, N, N, U, U, N]),
        (D::ResultIntMul, [N, N, N, N, U, U, N]),
        (D::ResultIntDiv, [N, N, N, N, U, U, N]),
        (D::ResultFp, [N, N, N, N, U, U, N]),
        (D::AddrLoad, [N, N, N, N, N, N, N]),
        (D::AddrStore, [N, N, N, N, N, N, N]),
        (D::DataLoad, [N, N, N, N, U, N, N]),
        (D::DataStore, [N, N, U, N, N, N, N]),
        (D::ControlFlow, [N, N, N, N, N, N, N]),
        (D::RestRegisterFile, [N, U, N, N, N, U, N]),
        (D::RestDataMemory, [N, N, U, N, N, N, U]),
    ];

    #[test]
    fn generated_table1_matches_the_paper() {
        for (item, expected) in PAPER_TABLE1 {
            for (c, want) in OptClass::ALL.into_iter().zip(expected) {
                assert_eq!(
                    c.mark(item),
                    want,
                    "column {} row {:?}",
                    c.acronym(),
                    item
                );
            }
        }
    }

    #[test]
    fn baseline_matches_the_paper() {
        assert!(matches!(baseline(D::OperandIntSimple), BaselineSafety::Safe));
        assert!(matches!(baseline(D::OperandIntDiv), BaselineSafety::Unsafe(_)));
        assert!(matches!(baseline(D::OperandFp), BaselineSafety::Unsafe(_)));
        assert!(matches!(baseline(D::AddrLoad), BaselineSafety::Unsafe(_)));
        assert!(matches!(baseline(D::ControlFlow), BaselineSafety::Unsafe(_)));
        assert!(matches!(
            baseline(D::RestDataMemory),
            BaselineSafety::SafeUnlessSpeculation
        ));
        assert!(matches!(baseline(D::DataLoad), BaselineSafety::Safe));
    }

    #[test]
    fn table2_classification_matches_the_paper() {
        use MldClass as M;
        assert_eq!(O::CompSimplification.mld_class(), M::StatelessInst);
        assert_eq!(O::PipelineCompression.mld_class(), M::StatelessInst);
        assert_eq!(O::SilentStores.mld_class(), M::StatefulInstArch);
        assert_eq!(O::ComputationReuse.mld_class(), M::StatefulInstUarch);
        assert_eq!(O::ValuePrediction.mld_class(), M::StatefulInstUarch);
        assert_eq!(O::RegFileCompression.mld_class(), M::MemoryCentric);
        assert_eq!(O::DataMemPrefetching.mld_class(), M::MemoryCentric);
    }

    #[test]
    fn meta_takeaway_union_leaves_nothing_safe() {
        // "If one considers the union of all optimizations we study, no
        // instruction operand/result (or data at rest) is safe."
        for item in DataItem::ALL {
            let unsafe_on_baseline = matches!(baseline(item), BaselineSafety::Unsafe(_));
            let some_opt_leaks = OptClass::ALL.iter().any(|c| c.mark(item) != N);
            assert!(
                unsafe_on_baseline || some_opt_leaks,
                "{item:?} would still be safe"
            );
        }
    }

    #[test]
    fn rendered_tables_are_nonempty_and_well_formed() {
        let t1 = render_table1();
        assert_eq!(t1.lines().count(), 16, "header + 15 rows");
        assert!(t1.contains("DMP"));
        let t2 = render_table2();
        assert_eq!(t2.lines().count(), 7);
        assert!(t2.contains("Memory-centric"));
    }
}
