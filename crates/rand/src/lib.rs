#![warn(missing_docs)]

//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, API-compatible with the subset the Pandora workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer ranges.
//!
//! The build environment has no registry access, so the workspace
//! vendors this tiny deterministic implementation instead of the real
//! crate. The generator is xoshiro256++ seeded via SplitMix64 — fast,
//! well distributed, and fully reproducible from a `u64` seed, which is
//! all the simulator's seeded structures (random cache replacement,
//! noise preconditioning, fault plans) require. It makes no attempt to
//! match the real crate's value streams, only its API.

use core::ops::Range;

/// A low-level source of random 64-bit values.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)` using `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling; the tiny modulo bias
                // is irrelevant for simulation noise.
                let r = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// A uniformly random `u64`.
    fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG flavours, mirroring the real crate's module layout.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 stream expands the seed into the full state;
            // guarantees a nonzero state for any seed.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..3);
            assert!(w < 3);
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
