#![warn(missing_docs)]

//! # pandora-bench
//!
//! The benchmark harness: every table and figure of *"Opening
//! Pandora's Box"* (ISCA 2021) as a registered, profiled experiment,
//! plus Criterion benches for the simulator and attack primitives.
//!
//! | Paper artifact | Experiment / binary |
//! |---|---|
//! | Table I (leakage landscape) | `table1` |
//! | Table II (MLD classification) | `table2` |
//! | Fig 2 + Fig 3 (example MLDs, capacities) | `fig2_fig3_mlds` |
//! | Fig 4 (silent-store cases A–D) | `fig4_cases` |
//! | Fig 5 (amplification gadget) | `fig5_amplification` |
//! | Fig 6 (BSAES runtime histogram) | `fig6_bsaes_hist` |
//! | Fig 1 + Fig 7 (DMP universal read gadget) | `fig7_urg` |
//! | §V-A3 replay key recovery | `e9_replay_recovery` |
//! | §IV-B stateless oracles | `e10_stateless_opts` |
//! | §IV-C stateful oracles | `e11_stateful_opts` |
//! | §IV-D1 register-file compression | `e12_rfc` |
//! | §VI-A defenses | `e14_defenses` |
//! | §VI-A3 Sv vs Sn performance | `e15_sv_vs_sn_performance` |
//! | noise robustness (extension) | `e16_noise_robustness` |
//!
//! Each experiment lives in [`experiments`] and is registered with the
//! resilient orchestration runtime in `pandora-runner`. Run one
//! standalone (`cargo run --release -p pandora-bench --bin <name>`,
//! with `--smoke` for the cheap profile), or run the whole suite with
//! the **`runall`** binary: thread-pooled, deadline-bounded,
//! panic-isolated, and resumable (`runall --smoke --jobs 2`,
//! `runall --resume`). Every binary publishes `results/<name>.txt`
//! atomically; `runall` additionally emits `results/summary.json`.
//! Criterion benches: `cargo bench -p pandora-bench`.

pub mod experiments;
pub mod perf;

/// Formats a (bucket, count, percent) histogram row like the paper's
/// Fig 6 presentation.
#[must_use]
pub fn histogram_row(bucket: u64, count: usize, pct: f64, scale: usize) -> String {
    let bar = "#".repeat((pct as usize).min(scale));
    format!("{bucket:>8} | {count:>4} {pct:>5.1}% {bar}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_row_formats() {
        let r = histogram_row(14200, 12, 24.0, 50);
        assert!(r.contains("14200"));
        assert!(r.contains("24.0%"));
        assert!(r.contains("########"));
    }
}
