//! **§IV-B stateless-optimization leakage** series: computation
//! simplification (zero-skip multiply, early-exit divide, FP
//! subnormals) and pipeline compression (operand packing), each
//! measured on the baseline machine and with the optimization enabled.
//! Smoke and full profiles are identical (the sweeps are tiny).

use std::time::Duration;

use pandora_attacks::stateless::{
    early_exit_div_cycles, fp_subnormal_cycles, operand_packing_cycles,
    strength_reduction_cycles, zero_skip_mul_cycles,
};
use pandora_runner::{outln, Ctx, Experiment, Failure};
use pandora_sim::SimConfig;

/// Registry entry.
#[must_use]
pub fn experiment() -> Experiment {
    Experiment {
        name: "e10_stateless_opts",
        title: "E10: §IV-B stateless-optimization leakage (CS + PC oracles)",
        run,
        fingerprint: || SimConfig::default().stable_hash(),
        deadline: Duration::from_secs(120),
    }
}

fn run(ctx: &Ctx) -> Result<(), Failure> {
    ctx.header("E10a: zero-skip multiply (secret x attacker-chosen 5)");
    outln!(ctx, "{:<14} {:>10} {:>10}", "secret", "baseline", "CS on");
    for s in [0u64, 1, 2, 1234, u64::MAX] {
        outln!(
            ctx,
            "{:<14} {:>10} {:>10}",
            s,
            zero_skip_mul_cycles(s, 5, false),
            zero_skip_mul_cycles(s, 5, true)
        );
    }
    outln!(
        ctx,
        "attacker sets its operand to 0: leak masked (both secrets equal):"
    );
    outln!(
        ctx,
        "  secret 0 -> {}, secret 1234 -> {}",
        zero_skip_mul_cycles(0, 0, true),
        zero_skip_mul_cycles(1234, 0, true)
    );

    ctx.header("E10e (§VI-B): multiply strength reduction (continuous optimization)");
    outln!(ctx, "{:<14} {:>10} {:>10}", "multiplier", "baseline", "CS on");
    for s in [63u64, 64, 100, 128] {
        outln!(
            ctx,
            "{:<14} {:>10} {:>10}",
            s,
            strength_reduction_cycles(s, false),
            strength_reduction_cycles(s, true)
        );
    }

    ctx.header("E10b: early-exit divide (latency tracks dividend magnitude)");
    outln!(ctx, "{:<22} {:>10} {:>10}", "dividend", "baseline", "CS on");
    for s in [0xffu64, 0xffff, 0xffff_ffff, u64::MAX / 3] {
        outln!(
            ctx,
            "{:<22} {:>10} {:>10}",
            format!("{s:#x}"),
            early_exit_div_cycles(s, false),
            early_exit_div_cycles(s, true)
        );
    }

    ctx.header("E10c: FP subnormal slow path");
    for (name, bits) in [
        ("normal 1.0", 1.0f64.to_bits()),
        ("normal 1e-300", 1e-300f64.to_bits()),
        ("subnormal min", 1u64),
        ("subnormal 2^-1060", (f64::MIN_POSITIVE / 16.0).to_bits()),
    ] {
        outln!(
            ctx,
            "{:<20} baseline {:>8}   slow-path on {:>8}",
            name,
            fp_subnormal_cycles(bits, false),
            fp_subnormal_cycles(bits, true)
        );
    }

    ctx.header("E10d: operand packing (throughput tracks operand width)");
    outln!(ctx, "{:<22} {:>10} {:>10}", "secret", "baseline", "PC on");
    for s in [3u64, 0xffff, 0x1_0000, 0xffff_ffff] {
        outln!(
            ctx,
            "{:<22} {:>10} {:>10}",
            format!("{s:#x}"),
            operand_packing_cycles(s, false, false),
            operand_packing_cycles(s, true, false)
        );
    }
    outln!(
        ctx,
        "\nPaper claim: pushed to the extreme, such optimizations render even\n\
         bitwise instructions, critical for constant-time programming, unsafe."
    );
    Ok(())
}
