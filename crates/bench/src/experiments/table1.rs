//! **Table I** — the leakage landscape: which program data each
//! optimization class endangers relative to the Baseline machine.
//!
//! `S` = safe, `U` = newly unsafe, `U'` = unsafe through a new function
//! of the data, `S‡` = safe absent a speculative-execution gadget,
//! `-` = no change. The generated matrix is asserted equal to the
//! paper's in `pandora-core`'s tests; smoke and full profiles are
//! identical (the generation is instantaneous).

use std::time::Duration;

use pandora_core::render_table1;
use pandora_runner::{outln, Ctx, Experiment, Failure};
use pandora_sim::SimConfig;

/// Registry entry.
#[must_use]
pub fn experiment() -> Experiment {
    Experiment {
        name: "table1",
        title: "Table I: leakage landscape (generated from MLD declarations)",
        run,
        fingerprint: || SimConfig::default().stable_hash(),
        deadline: Duration::from_secs(30),
    }
}

fn run(ctx: &Ctx) -> Result<(), Failure> {
    ctx.header("Table I: leakage landscape (generated from MLD declarations)");
    ctx.line(format_args!("{}", render_table1().trim_end()));
    outln!(ctx);
    outln!(
        ctx,
        "Meta takeaway (§III): over the union of all seven optimization\n\
         classes, no instruction operand/result or data at rest is safe."
    );
    Ok(())
}
