//! **Figure 5** — the amplification gadget — as a measured experiment:
//! the end-to-end runtime of a single amplified store when it is
//! silent vs not, for both gadget flavours, plus the ablations
//! DESIGN.md calls out (store-queue depth sweep; no-gadget control).
//!
//! The smoke profile runs only the gadget matrix (the headline
//! result), skipping the three ablation sections — the mode CI uses to
//! keep the experiment exercised without paying for the full sweep.

use std::sync::Arc;
use std::time::Duration;

use pandora_attacks::{AmplifyGadget, FlushKind};
use pandora_isa::{Asm, Program, Reg};
use pandora_runner::{outln, Ctx, Experiment, Failure};
use pandora_sim::fleet::{self, MemberSpec};
use pandora_sim::{Checkpoint, Machine, OptConfig, SimConfig};

/// Registry entry.
#[must_use]
pub fn experiment() -> Experiment {
    Experiment {
        name: "fig5_amplification",
        title: "Fig 5: amplification gadget (silent vs non-silent store)",
        run,
        fingerprint: || SimConfig::with_opts(OptConfig::with_silent_stores()).stable_hash(),
        deadline: Duration::from_secs(120),
    }
}

const TARGET: u64 = 0x1_0000;
const DELAY: u64 = 0x8_0000;

/// One row's experiment: gadget flavour, machine config, and the
/// old/new target values (equal = silent store, different = loud).
type MeasureJob = (SimConfig, Option<FlushKind>, u64, u64);

/// The measured program: warm the target, emit the (optional) gadget,
/// store `new` to the target, drain trailing stores.
fn measure_program(gadget: Option<&AmplifyGadget>, new: u64) -> Result<Program, Failure> {
    let mut a = Asm::new();
    a.ld(Reg::T0, Reg::ZERO, TARGET as i64);
    for i in 1..6i64 {
        a.ld(Reg::T0, Reg::ZERO, (TARGET + 0x1000) as i64 + 64 * i);
    }
    a.fence();
    a.li(Reg::T0, new);
    if let Some(g) = gadget {
        g.emit(&mut a);
    }
    a.sd(Reg::T0, Reg::ZERO, TARGET as i64);
    for i in 1..6i64 {
        a.sd(Reg::T0, Reg::ZERO, (TARGET + 0x1000) as i64 + 64 * i);
    }
    a.fence();
    a.halt();
    Ok(a.assemble()?)
}

/// Everything the warm trial image depends on — jobs agreeing on this
/// key fork from one shared mid-run [`Checkpoint`].
type ProgramKey = (SimConfig, Option<FlushKind>, u64);

/// One cached warm image: the assembled program plus the boundary
/// checkpoint every matching trial forks from.
type WarmEntry = (Arc<Program>, Arc<Checkpoint>);

/// Builds the shared warm state for one key: assemble the program,
/// bake the gadget's memory image, run the six warm loads plus the
/// fence (seven committed instructions), and snapshot at the boundary.
/// The per-trial `old` value is written *after* forking, so one
/// checkpoint serves both the silent and loud trials;
/// `tests/golden_stats.rs` pins this fork as byte-identical to a
/// straight run for every golden fig5 configuration.
fn warm_checkpoint(
    cfg: SimConfig,
    kind: Option<FlushKind>,
    new: u64,
) -> Result<WarmEntry, Failure> {
    let gadget = kind.map(|k| AmplifyGadget::new(&cfg, TARGET, DELAY, k));
    let prog = Arc::new(measure_program(gadget.as_ref(), new)?);
    let mut warm = Machine::new(cfg);
    warm.load_program(&prog);
    if let Some(g) = &gadget {
        g.setup_memory(warm.mem_mut());
        g.setup_memory_flush_variant(warm.mem_mut());
    }
    warm.run_until_committed(7, 1_000_000).map_err(Failure::new)?;
    Ok((prog, Arc::new(warm.snapshot())))
}

/// Measures every job as one fleet grid: the warm prefix runs once per
/// distinct `(config, flavour, new)` combination, each trial forks
/// from that shared checkpoint with only the per-trial target write as
/// prep, machines are recycled between jobs, and jobs steal work
/// across the context's fleet-thread count. Cycle counts come back in
/// job order (and include the checkpointed warm-prefix cycles, so they
/// match a straight run bit for bit).
fn measure_grid(ctx: &Ctx, jobs: &[MeasureJob]) -> Result<Vec<u64>, Failure> {
    let mut cache: Vec<(ProgramKey, WarmEntry)> = Vec::new();
    let mut specs = Vec::with_capacity(jobs.len());
    for &(cfg, kind, old, new) in jobs {
        let key = (cfg, kind, new);
        let (prog, ck) = match cache.iter().find(|(k, _)| *k == key) {
            Some((_, entry)) => entry.clone(),
            None => {
                let entry = warm_checkpoint(cfg, kind, new)?;
                cache.push((key, entry.clone()));
                entry
            }
        };
        specs.push(
            MemberSpec::new(cfg, prog)
                .with_start(ck)
                .with_max_cycles(1_000_000)
                .with_prep(move |m| {
                    m.mem_mut().write_u64(TARGET, old).expect("target in memory");
                    Ok(())
                }),
        );
    }
    fleet::trial_grid(&specs, ctx.fleet_threads(), |_, _, stats| stats.cycles)
        .into_iter()
        .map(|r| r.map_err(|e| Failure::new(e.unwrap_sim())))
        .collect()
}

/// Prints one silent/loud table section from interleaved grid results
/// (`cycles[2i]` silent, `cycles[2i + 1]` loud).
fn print_rows(ctx: &Ctx, labels: &[impl std::fmt::Display], cycles: &[u64], width: usize) {
    for (i, label) in labels.iter().enumerate() {
        let (silent, loud) = (cycles[2 * i], cycles[2 * i + 1]);
        outln!(
            ctx,
            "{:<width$} {:>8} {:>8} {:>6}",
            label,
            silent,
            loud,
            loud as i64 - silent as i64
        );
    }
}

fn run(ctx: &Ctx) -> Result<(), Failure> {
    let base = SimConfig::with_opts(OptConfig::with_silent_stores());

    ctx.header("Fig 5: amplification gadget (silent vs non-silent target store)");
    outln!(
        ctx,
        "{:<22} {:>8} {:>8} {:>6}",
        "variant",
        "silent",
        "loud",
        "gap"
    );
    let variants = [
        ("no gadget (control)", None),
        ("set contention", Some(FlushKind::Contention)),
        ("flush instruction", Some(FlushKind::FlushInstr)),
    ];
    let jobs: Vec<MeasureJob> = variants
        .iter()
        .flat_map(|&(_, kind)| [(base, kind, 42, 42), (base, kind, 41, 42)])
        .collect();
    let cycles = measure_grid(ctx, &jobs)?;
    let labels: Vec<&str> = variants.iter().map(|&(name, _)| name).collect();
    print_rows(ctx, &labels, &cycles, 22);

    if ctx.smoke() {
        outln!(ctx, "\n(smoke profile: skipping the ablation sections)");
        return Ok(());
    }

    ctx.header("Ablation: store-queue depth (head-of-line blocking lever)");
    outln!(
        ctx,
        "{:<10} {:>8} {:>8} {:>6}",
        "sq_size",
        "silent",
        "loud",
        "gap"
    );
    let sq_sizes = [2usize, 5, 8, 16];
    let jobs: Vec<MeasureJob> = sq_sizes
        .iter()
        .flat_map(|&sq| {
            let mut cfg = base;
            cfg.pipeline.sq_size = sq;
            let kind = Some(FlushKind::Contention);
            [(cfg, kind, 42, 42), (cfg, kind, 41, 42)]
        })
        .collect();
    let cycles = measure_grid(ctx, &jobs)?;
    print_rows(ctx, &sq_sizes, &cycles, 10);

    ctx.header("Ablation: core size (little / default / big)");
    outln!(
        ctx,
        "{:<10} {:>8} {:>8} {:>6}",
        "core",
        "silent",
        "loud",
        "gap"
    );
    let cores = [
        ("little", SimConfig::little_core()),
        ("default", SimConfig::default()),
        ("big", SimConfig::big_core()),
    ];
    let jobs: Vec<MeasureJob> = cores
        .iter()
        .flat_map(|&(_, mut cfg)| {
            cfg.opts = OptConfig::with_silent_stores();
            let kind = Some(FlushKind::Contention);
            [(cfg, kind, 42, 42), (cfg, kind, 41, 42)]
        })
        .collect();
    let cycles = measure_grid(ctx, &jobs)?;
    let labels: Vec<&str> = cores.iter().map(|&(name, _)| name).collect();
    print_rows(ctx, &labels, &cycles, 10);

    outln!(
        ctx,
        "(the little core's single load port is busy with the gadget's own\n\
         loads when the store resolves, so every store is Fig 4 case C —\n\
         never checked, never silent: the machine is incidentally immune)"
    );

    ctx.header("Ablation: load ports (SS-load availability, Fig 4 case C)");
    outln!(
        ctx,
        "{:<10} {:>8} {:>8} {:>6}",
        "ports",
        "silent",
        "loud",
        "gap"
    );
    let port_counts = [1usize, 2, 4];
    let jobs: Vec<MeasureJob> = port_counts
        .iter()
        .flat_map(|&ports| {
            let mut cfg = base;
            cfg.pipeline.load_ports = ports;
            let kind = Some(FlushKind::Contention);
            [(cfg, kind, 42, 42), (cfg, kind, 41, 42)]
        })
        .collect();
    let cycles = measure_grid(ctx, &jobs)?;
    print_rows(ctx, &port_counts, &cycles, 10);
    outln!(
        ctx,
        "\nPaper claim: the gadget creates a large (>100 cycle), easily\n\
         distinguishable timing difference for a single dynamic store."
    );
    Ok(())
}
