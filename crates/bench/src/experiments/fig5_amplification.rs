//! **Figure 5** — the amplification gadget — as a measured experiment:
//! the end-to-end runtime of a single amplified store when it is
//! silent vs not, for both gadget flavours, plus the ablations
//! DESIGN.md calls out (store-queue depth sweep; no-gadget control).
//!
//! The smoke profile runs only the gadget matrix (the headline
//! result), skipping the three ablation sections — the mode CI uses to
//! keep the experiment exercised without paying for the full sweep.

use std::time::Duration;

use pandora_attacks::{AmplifyGadget, FlushKind};
use pandora_isa::{Asm, Reg};
use pandora_runner::{outln, Ctx, Experiment, Failure};
use pandora_sim::{Machine, OptConfig, SimConfig};

/// Registry entry.
#[must_use]
pub fn experiment() -> Experiment {
    Experiment {
        name: "fig5_amplification",
        title: "Fig 5: amplification gadget (silent vs non-silent store)",
        run,
        fingerprint: || SimConfig::with_opts(OptConfig::with_silent_stores()).stable_hash(),
        deadline: Duration::from_secs(120),
    }
}

const TARGET: u64 = 0x1_0000;
const DELAY: u64 = 0x8_0000;

fn measure(cfg: SimConfig, kind: Option<FlushKind>, old: u64, new: u64) -> Result<u64, Failure> {
    let gadget = kind.map(|k| AmplifyGadget::new(&cfg, TARGET, DELAY, k));
    let mut a = Asm::new();
    a.ld(Reg::T0, Reg::ZERO, TARGET as i64);
    for i in 1..6i64 {
        a.ld(Reg::T0, Reg::ZERO, (TARGET + 0x1000) as i64 + 64 * i);
    }
    a.fence();
    a.li(Reg::T0, new);
    if let Some(g) = &gadget {
        g.emit(&mut a);
    }
    a.sd(Reg::T0, Reg::ZERO, TARGET as i64);
    for i in 1..6i64 {
        a.sd(Reg::T0, Reg::ZERO, (TARGET + 0x1000) as i64 + 64 * i);
    }
    a.fence();
    a.halt();
    let prog = a.assemble()?;
    let mut m = Machine::new(cfg);
    m.load_program(&prog);
    m.mem_mut().write_u64(TARGET, old)?;
    if let Some(g) = &gadget {
        g.setup_memory(m.mem_mut());
        g.setup_memory_flush_variant(m.mem_mut());
    }
    m.run(1_000_000)?;
    Ok(m.stats().cycles)
}

fn run(ctx: &Ctx) -> Result<(), Failure> {
    let base = SimConfig::with_opts(OptConfig::with_silent_stores());

    ctx.header("Fig 5: amplification gadget (silent vs non-silent target store)");
    outln!(
        ctx,
        "{:<22} {:>8} {:>8} {:>6}",
        "variant",
        "silent",
        "loud",
        "gap"
    );
    for (name, kind) in [
        ("no gadget (control)", None),
        ("set contention", Some(FlushKind::Contention)),
        ("flush instruction", Some(FlushKind::FlushInstr)),
    ] {
        let silent = measure(base, kind, 42, 42)?;
        let loud = measure(base, kind, 41, 42)?;
        outln!(
            ctx,
            "{:<22} {:>8} {:>8} {:>6}",
            name,
            silent,
            loud,
            loud as i64 - silent as i64
        );
    }

    if ctx.smoke() {
        outln!(ctx, "\n(smoke profile: skipping the ablation sections)");
        return Ok(());
    }

    ctx.header("Ablation: store-queue depth (head-of-line blocking lever)");
    outln!(
        ctx,
        "{:<10} {:>8} {:>8} {:>6}",
        "sq_size",
        "silent",
        "loud",
        "gap"
    );
    for sq in [2usize, 5, 8, 16] {
        let mut cfg = base;
        cfg.pipeline.sq_size = sq;
        let silent = measure(cfg, Some(FlushKind::Contention), 42, 42)?;
        let loud = measure(cfg, Some(FlushKind::Contention), 41, 42)?;
        outln!(
            ctx,
            "{:<10} {:>8} {:>8} {:>6}",
            sq,
            silent,
            loud,
            loud as i64 - silent as i64
        );
    }

    ctx.header("Ablation: core size (little / default / big)");
    outln!(
        ctx,
        "{:<10} {:>8} {:>8} {:>6}",
        "core",
        "silent",
        "loud",
        "gap"
    );
    for (name, mut cfg) in [
        ("little", SimConfig::little_core()),
        ("default", SimConfig::default()),
        ("big", SimConfig::big_core()),
    ] {
        cfg.opts = OptConfig::with_silent_stores();
        let silent = measure(cfg, Some(FlushKind::Contention), 42, 42)?;
        let loud = measure(cfg, Some(FlushKind::Contention), 41, 42)?;
        outln!(
            ctx,
            "{:<10} {:>8} {:>8} {:>6}",
            name,
            silent,
            loud,
            loud as i64 - silent as i64
        );
    }

    outln!(
        ctx,
        "(the little core's single load port is busy with the gadget's own\n\
         loads when the store resolves, so every store is Fig 4 case C —\n\
         never checked, never silent: the machine is incidentally immune)"
    );

    ctx.header("Ablation: load ports (SS-load availability, Fig 4 case C)");
    outln!(
        ctx,
        "{:<10} {:>8} {:>8} {:>6}",
        "ports",
        "silent",
        "loud",
        "gap"
    );
    for ports in [1usize, 2, 4] {
        let mut cfg = base;
        cfg.pipeline.load_ports = ports;
        let silent = measure(cfg, Some(FlushKind::Contention), 42, 42)?;
        let loud = measure(cfg, Some(FlushKind::Contention), 41, 42)?;
        outln!(
            ctx,
            "{:<10} {:>8} {:>8} {:>6}",
            ports,
            silent,
            loud,
            loud as i64 - silent as i64
        );
    }
    outln!(
        ctx,
        "\nPaper claim: the gadget creates a large (>100 cycle), easily\n\
         distinguishable timing difference for a single dynamic store."
    );
    Ok(())
}
