//! **§V-A3 replay analysis**: full key recovery through the
//! silent-store equality oracle.
//!
//! The paper bounds the attack at 8 × 65 536 = 524 288 experiments
//! (each 16-bit slice takes at most 2^16 guesses). Running the full
//! search in a cycle-accurate simulator is ~0.5 M simulated encryption
//! pairs; by default this experiment demonstrates the pipeline with a
//! windowed search per slice — 33 guesses each on the full profile,
//! 9 on smoke. Pass `--full-slice` to additionally run one complete
//! 65 536-guess search and measure its cost.

use std::time::Duration;

use pandora_attacks::BsaesAttack;
use pandora_crypto::RoundKeys;
use pandora_runner::{outln, Ctx, Experiment, Failure};
use pandora_sim::{OptConfig, SimConfig};

/// Registry entry.
#[must_use]
pub fn experiment() -> Experiment {
    Experiment {
        name: "e9_replay_recovery",
        title: "E9: §V-A3 silent-store replay key recovery",
        run,
        fingerprint: || SimConfig::with_opts(OptConfig::with_silent_stores()).stable_hash(),
        deadline: Duration::from_secs(600),
    }
}

fn run(ctx: &Ctx) -> Result<(), Failure> {
    let full_slice = ctx.has_opt("--full-slice");
    let half_window: u16 = if ctx.smoke() { 4 } else { 16 };
    let window = u64::from(half_window) * 2 + 1;
    let victim_key: [u8; 16] = std::array::from_fn(|i| (i * 29 + 3) as u8);
    let attacker_key: [u8; 16] = std::array::from_fn(|i| (i * 17 + 11) as u8);
    let victim_pt: [u8; 16] = std::array::from_fn(|i| (i * 5 + 1) as u8);

    ctx.header("E9: silent-store replay key recovery (§V-A3)");
    outln!(
        ctx,
        "budget: 8 slices x 65,536 guesses = 524,288 experiments max\n\
         (windowed demo below uses {window} guesses per slice around the truth)"
    );

    let probe = BsaesAttack::new(victim_key, attacker_key, victim_pt, 0);
    let atk = probe.clone();
    let recovered = atk.recover_key(
        |k| {
            let truth = BsaesAttack::new(victim_key, attacker_key, victim_pt, k)
                .true_slice_value();
            let lo = truth.wrapping_sub(half_window);
            (0..window as u16).map(|d| lo.wrapping_add(d)).collect()
        },
        60,
    );
    outln!(ctx, "victim key:    {victim_key:02x?}");
    outln!(ctx, "recovered key: {recovered:02x?}");
    let ok = recovered == Some(victim_key);
    outln!(ctx, "key recovery:  {}", if ok { "SUCCESS" } else { "FAILED" });
    if !ok {
        return Err(Failure::new("windowed replay search missed the key"));
    }

    // Show the inversion arithmetic explicitly.
    ctx.header("Key-schedule inversion (the paper's final step)");
    let rk = RoundKeys::expand(&victim_key);
    let k10 = rk.round(10);
    outln!(ctx, "round-10 key:  {k10:02x?}");
    outln!(
        ctx,
        "inverted to:   {:02x?}",
        RoundKeys::from_round10(&k10).master_key()
    );

    if full_slice {
        ctx.header("Full 65,536-guess search for slice 0");
        let truth = probe.true_slice_value();
        let got = probe.recover_slice(0..=u16::MAX, 60);
        outln!(ctx, "truth {truth}, recovered {got:?}");
    }
    Ok(())
}
