//! **E17** — the leakage-scanning service, exercised in-process.
//!
//! Runs the `pandora-server` scan engine (no socket) on its two
//! built-in victims and prints the resulting Table-I-style rows:
//!
//! * the bitsliced-AES victim with §V-A3's 16-bit stack spills must be
//!   flagged by (at least) the silent-store and DMP classes with
//!   nonzero measured capacity, and
//! * the constant-time control — the same program with the key public
//!   and the marked secret untouched — must be flagged by none.
//!
//! This is the service's acceptance property stated as a suite
//! experiment, so `runall --smoke` catches a scanner regression even
//! when nobody runs the HTTP integration tests.

use std::time::Duration;

use pandora_runner::{Ctx, Experiment, Failure};
use pandora_server::scan::run_scan;
use pandora_server::victims;

/// Registry entry.
#[must_use]
pub fn experiment() -> Experiment {
    Experiment {
        name: "e17_scan_service",
        title: "E17: leakage-scan service verdicts for bsaes and control",
        run,
        fingerprint: || {
            let spec = victims::bsaes_spec(super::DEFAULT_SEED, 1);
            pandora_runner::hash_str(&format!(
                "e17 mem={} cycles={} secret={}B",
                spec.mem_size,
                spec.max_cycles,
                spec.secret.a.len()
            ))
        },
        deadline: Duration::from_secs(300),
    }
}

fn run(ctx: &Ctx) -> Result<(), Failure> {
    let trials = if ctx.smoke() { 1 } else { 4 };
    let seed = ctx.seed();

    ctx.header("Scan: bitsliced AES with 16-bit stack spills (leaky)");
    let leaky = run_scan(&victims::bsaes_spec(seed, trials), 0).map_err(Failure::new)?;
    print_report(ctx, &leaky);
    if leaky.architectural_leak {
        return Err(Failure::new("bsaes victim must be architecturally constant-time"));
    }
    for class in ["silent-store", "dmp"] {
        let c = leaky
            .classes
            .iter()
            .find(|c| c.class == class)
            .ok_or_else(|| Failure::new(format!("class {class} missing from report")))?;
        if !c.leaks || c.capacity_bits_per_run <= 0.0 {
            return Err(Failure::new(format!(
                "{class} must flag the bsaes victim with nonzero capacity (got {})",
                c.capacity_bits_per_run
            )));
        }
    }

    ctx.header("Scan: constant-time control (key public, secret untouched)");
    let control = run_scan(&victims::ct_control_spec(seed, trials), 0).map_err(Failure::new)?;
    print_report(ctx, &control);
    if !control.leaking.is_empty() {
        return Err(Failure::new(format!(
            "control victim must scan clean; flagged: {:?}",
            control.leaking
        )));
    }
    Ok(())
}

fn print_report(ctx: &Ctx, report: &pandora_server::ScanReport) {
    ctx.line(format_args!(
        "  architectural leak: {} ({} simulated runs)",
        report.architectural_leak, report.runs
    ));
    for c in &report.classes {
        ctx.line(format_args!(
            "  {:16} leaks={:5} capacity={:.2} bits/run",
            c.class, c.leaks, c.capacity_bits_per_run
        ));
    }
}
