//! **§IV-D1 register-file-compression leakage**: a register-hungry
//! constant-time comparison loop whose runtime depends on whether its
//! XOR results compress — i.e. on whether the private value equals the
//! attacker-supplied input — ablated over the two match sets (0/1 vs
//! any-value). Smoke and full profiles are identical.

use std::time::Duration;

use pandora_attacks::stateful::rfc_equality_cycles;
use pandora_runner::{outln, Ctx, Experiment, Failure};
use pandora_sim::{RfcMatch, SimConfig};

/// Registry entry.
#[must_use]
pub fn experiment() -> Experiment {
    Experiment {
        name: "e12_rfc",
        title: "E12: §IV-D1 register-file compression equality oracle",
        run,
        fingerprint: || SimConfig::default().stable_hash(),
        deadline: Duration::from_secs(120),
    }
}

fn run(ctx: &Ctx) -> Result<(), Failure> {
    ctx.header("E12: register-file compression equality oracle");
    let secret = 0x42u64;
    for (name, kind) in [("0/1 variant", RfcMatch::ZeroOne), ("any-value variant", RfcMatch::Any)] {
        outln!(ctx, "match set: {name}");
        outln!(ctx, "{:<12} {:>10}", "input", "cycles");
        for input in [0x42u64, 0x40, 0x99, 0x142] {
            let marker = if input == secret {
                "  <- equal (results compress)"
            } else {
                ""
            };
            outln!(
                ctx,
                "{:<12} {:>10}{marker}",
                format!("{input:#x}"),
                rfc_equality_cycles(secret, input, kind)
            );
        }
    }
    outln!(
        ctx,
        "\nNote: under the any-value variant this workload's repeated XOR\n\
         results match their own earlier instances already committed in the\n\
         register file, so every run compresses — the 0/1 variant is the\n\
         clean equality oracle here."
    );
    outln!(
        ctx,
        "\nPaper claim (Table I): register-file compression makes instruction\n\
         results and the register file at rest Unsafe — constant-time code\n\
         leaks comparison outcomes through rename pressure."
    );
    Ok(())
}
