//! **E16** — noise robustness: deterministic interference intensity
//! vs channel quality and end-to-end attack success.
//!
//! The paper's attacks are measured on a quiet machine; a real cloud
//! tenant shares it with co-runners. This experiment turns on the
//! seed-driven noise model (`pandora_sim::noise`) and sweeps its
//! intensity against three layers of the stack:
//!
//! 1. **Channel quality** — probe hit/miss SNR and estimated BER, plus
//!    a 16-symbol covert channel decoded naively (one shot) and with
//!    repetition coding (majority vote). The adaptive receiver
//!    demonstrates drift detection and threshold re-calibration.
//! 2. **Amplification under noise** — the Fig 5 argument: the
//!    amplified BSAES runtime gap (>100 cycles) survives intensities
//!    that swallow the unamplified control's couple-of-cycle gap.
//! 3. **End-to-end at the sweep midpoint** — the majority-vote BSAES
//!    attack must still recover all 16 key bytes (trading samples for
//!    accuracy) while the single-sweep receiver measurably degrades;
//!    the URG read is decoded naively vs voted the same way.
//!
//! Expected shape: graceful degradation — error rates climb with
//! intensity, voting pushes the cliff to higher intensities, and the
//! amplified channel outlives the unamplified one.

use std::time::Duration;

use pandora_attacks::{BsaesAttack, GuessJob, UrgAttack};
use pandora_channels::{
    probe_calibration_grid, probe_calibration_round, AdaptiveReceiver, BitErrorCounter,
    ChannelQuality, CovertChannel, RetryPolicy,
};
use pandora_runner::{outln, Ctx, Experiment, Failure};
use pandora_sim::{NoiseConfig, OptConfig, SimConfig};

/// The sweep midpoint: the intensity the end-to-end acceptance runs
/// at.
const MIDPOINT: u16 = 30;
/// Gap bar for the BSAES argmin (same as the quiet experiments).
const MIN_GAP: u64 = 60;
/// A private location well outside the URG sandbox.
const SECRET_ADDR: u64 = 0x20_0000;

/// Registry entry.
#[must_use]
pub fn experiment() -> Experiment {
    Experiment {
        name: "e16_noise_robustness",
        title: "E16: noise intensity vs channel BER and attack success",
        run,
        fingerprint: || {
            let mut cfg = SimConfig::with_opts(OptConfig::with_silent_stores());
            cfg.noise = NoiseConfig::at_intensity(MIDPOINT, super::DEFAULT_SEED);
            cfg.stable_hash()
        },
        deadline: Duration::from_secs(600),
    }
}

fn intensities(ctx: &Ctx) -> &'static [u16] {
    if ctx.smoke() {
        &[0, MIDPOINT, 60]
    } else {
        &[0, 15, MIDPOINT, 45, 60]
    }
}

fn keys() -> ([u8; 16], [u8; 16], [u8; 16]) {
    let victim_key: [u8; 16] = std::array::from_fn(|i| (i * 13 + 7) as u8);
    let attacker_key: [u8; 16] = std::array::from_fn(|i| (i * 31 + 5) as u8);
    let victim_pt: [u8; 16] = std::array::from_fn(|i| (i * 3) as u8);
    (victim_key, attacker_key, victim_pt)
}

/// The interference window of the BSAES phases: dense enough over the
/// worker stack that the single-sweep receiver measurably degrades at
/// the midpoint, dilute enough that voting still converges.
const BSAES_WINDOW: (u64, u64) = (0x1_0000, 0x1_8000);

fn run(ctx: &Ctx) -> Result<(), Failure> {
    channel_quality_sweep(ctx)?;
    amplification_sweep(ctx)?;
    attack_success_sweep(ctx)
}

/// Phase 1: probe SNR/BER and covert-channel error rates per
/// intensity, naive vs repetition-coded, plus the adaptive receiver's
/// drift response.
fn channel_quality_sweep(ctx: &Ctx) -> Result<(), Failure> {
    ctx.header("Channel quality vs noise intensity");
    let trials = 16;
    let redundancy = if ctx.smoke() { 5 } else { 7 };
    let values: &[usize] = if ctx.smoke() {
        &[1, 6, 11, 14]
    } else {
        &[1, 6, 11, 14, 3, 9, 12, 5]
    };
    let ch = CovertChannel {
        base: 0x4_0000,
        symbols: 16,
        stride: 64,
        result_base: 0x800,
    };
    let quiet = SimConfig::default();
    // Jittered backoff, seeded from the suite seed: retry rounds across
    // a parallel suite stop resizing in lockstep, and the sequence is
    // still reproduced exactly on resume/reverify.
    let policy = RetryPolicy::default().with_jitter(ctx.seed() ^ 0xE16);
    let mut receiver =
        AdaptiveReceiver::calibrate(policy, trials, |trials, _attempt| {
            probe_calibration_round(&quiet, trials, None)
        })
        .map_err(|e| Failure::new(format!("quiet calibration failed: {e}")))?;
    outln!(
        ctx,
        "quiet calibration: threshold {} (t = {:.1})",
        receiver.threshold(),
        receiver.calibration().t
    );
    outln!(
        ctx,
        "\n{:>9}  {:>8}  {:>9}  {:>11}  {:>11}  {}",
        "intensity",
        "SNR dB",
        "est BER",
        "naive SER",
        "vote SER",
        "adaptive receiver"
    );
    // All intensities' probe rounds run as one fleet grid up front
    // (shared program, pooled machines, work-stealing threads, failed
    // rounds re-dispatched individually); per-row quality is then read
    // out of the grid in intensity order. The per-intensity seeds (not
    // sweep indices) keep smoke and full profiles printing identical
    // rows for shared intensities.
    let noisy_cfgs: Vec<SimConfig> = intensities(ctx)
        .iter()
        .map(|&intensity| {
            let seed = ctx.seed().wrapping_add(u64::from(intensity) * 0x9e37_79b9);
            let mut noisy = quiet;
            noisy.noise = NoiseConfig::at_intensity(intensity, seed);
            noisy
        })
        .collect();
    let probe_rounds = probe_calibration_grid(&noisy_cfgs, trials, &policy, ctx.fleet_threads())
        .map_err(|e| Failure::new(format!("noisy probe grid failed: {e}")))?;
    for (idx, &intensity) in intensities(ctx).iter().enumerate() {
        let seed = ctx.seed().wrapping_add(u64::from(intensity) * 0x9e37_79b9);
        let noisy = noisy_cfgs[idx];
        let (hits, misses) = &probe_rounds[idx];
        let q = ChannelQuality::from_samples(hits, misses);
        // Drift response: re-calibrate when the separation collapses.
        let adapted = receiver.observe(hits, misses, trials, |trials, _attempt| {
            probe_calibration_round(&noisy, trials, None)
        });
        let adapted = match adapted {
            Ok(true) => format!("recalibrated -> {}", receiver.threshold()),
            Ok(false) => "threshold holds".to_string(),
            Err(e) => format!("dead channel ({e})"),
        };
        // Covert symbol error rates, one-shot vs majority vote, under
        // interference windowed onto the channel's line array. The
        // one-shot decodes for every value run as a single fleet grid;
        // the per-value seed schedule is unchanged.
        let mut cfg = quiet;
        cfg.noise = NoiseConfig::at_intensity(intensity, seed).with_window(0x4_0000, 0x5_0000);
        let bits = ch.capacity_bits() as u32;
        let jobs: Vec<(SimConfig, usize)> = values
            .iter()
            .enumerate()
            .map(|(vi, &value)| {
                let mut c = cfg;
                c.noise.seed = cfg.noise.seed.wrapping_add(vi as u64 * 0xabcd);
                (c, value)
            })
            .collect();
        let decodes = ch.round_trip_grid(&jobs, ctx.fleet_threads())?;
        let mut naive = BitErrorCounter::new();
        let mut vote = BitErrorCounter::new();
        for (&(c, value), got) in jobs.iter().zip(decodes) {
            naive.record(value, got, bits);
            vote.record(value, ch.round_trip_vote(c, value, redundancy)?, bits);
        }
        outln!(
            ctx,
            "{:>9}  {:>8.1}  {:>9.4}  {:>11.3}  {:>11.3}  {}",
            intensity,
            q.snr_db(),
            q.est_ber,
            naive.ser(),
            vote.ser(),
            adapted
        );
    }
    outln!(
        ctx,
        "\nrepetition coding (redundancy {redundancy}) holds the symbol error\n\
         rate down at intensities that degrade the one-shot receiver."
    );
    Ok(())
}

/// Phase 2: the amplified BSAES runtime gap vs the unamplified
/// control's, per intensity — amplification buys noise margin (Fig 5).
fn amplification_sweep(ctx: &Ctx) -> Result<(), Failure> {
    ctx.header("Amplified vs unamplified BSAES gap vs noise intensity");
    let trials: u64 = if ctx.smoke() { 2 } else { 4 };
    let (vk, ak, vpt) = keys();
    let mut amplified = BsaesAttack::new(vk, ak, vpt, 0);
    let mut control = BsaesAttack::control(vk, ak, vpt, 0);
    amplified.set_fleet_threads(ctx.fleet_threads());
    control.set_fleet_threads(ctx.fleet_threads());
    let truth = amplified.true_slice_value();
    outln!(
        ctx,
        "{:>9}  {:>15}  {:>15}",
        "intensity",
        "amplified gap",
        "control gap"
    );
    for &intensity in intensities(ctx) {
        let seed = ctx
            .seed()
            .wrapping_add(0xf1f1)
            .wrapping_add(u64::from(intensity) * 0x9e37_79b9);
        // All trials of both guesses run as one fleet grid per attack:
        // the per-trial noise override rides in each job
        // (hit/miss interleaved, so chunks of 2 are one trial's pair).
        let mean_gap = |atk: &BsaesAttack| -> Result<f64, Failure> {
            let jobs: Vec<GuessJob> = (0..trials)
                .flat_map(|t| {
                    let noise =
                        NoiseConfig::at_intensity(intensity, seed.wrapping_add(t * 7919))
                            .with_window(BSAES_WINDOW.0, BSAES_WINDOW.1);
                    [truth, truth ^ 0x1234].map(|guess| GuessJob {
                        guess,
                        noise: Some(noise),
                        noise_seed: None,
                    })
                })
                .collect();
            let outs = atk.measure_guess_grid(&jobs)?;
            let gap_sum: i64 = outs
                .chunks(2)
                .map(|pair| pair[1].cycles as i64 - pair[0].cycles as i64)
                .sum();
            Ok(gap_sum as f64 / trials as f64)
        };
        outln!(
            ctx,
            "{:>9}  {:>15.1}  {:>15.1}",
            intensity,
            mean_gap(&amplified)?,
            mean_gap(&control)?
        );
    }
    outln!(
        ctx,
        "\nthe amplified >100-cycle gap survives intensities whose runtime\n\
         variance swallows the control's couple-of-cycle silent-store\n\
         saving — amplification is what buys noise margin."
    );
    Ok(())
}

/// Per-slice BSAES recovery count at one intensity: how many of the
/// eight slices a receiver with the given redundancy lands (the same
/// per-slice seed schedule [`BsaesAttack::recover_key_vote`] uses).
fn bsaes_slices_recovered(
    noise: NoiseConfig,
    redundancy: usize,
) -> Result<usize, Failure> {
    let (vk, ak, vpt) = keys();
    let mut ok = 0;
    for k in 0..8usize {
        let mut per_slice = BsaesAttack::new(vk, ak, vpt, k);
        let mut n = noise;
        n.seed = n.seed.wrapping_add(k as u64 * 0x5851_f42d_4c95_7f2d);
        per_slice.set_noise(n);
        let truth = per_slice.true_slice_value();
        let lo = truth.wrapping_sub(2);
        let window: Vec<u16> = (0..5).map(|d| lo.wrapping_add(d)).collect();
        if per_slice.recover_slice_vote(&window, MIN_GAP, redundancy)? == Some(truth) {
            ok += 1;
        }
    }
    Ok(ok)
}

/// Phase 3: end-to-end attack success per intensity — BSAES slices
/// recovered and URG bytes read, one-shot vs majority-voted — then
/// the acceptance checks at the midpoint: the voted attack recovers
/// the full key while the single-sweep receiver measurably degrades.
fn attack_success_sweep(ctx: &Ctx) -> Result<(), Failure> {
    ctx.header("End-to-end attack success vs noise intensity");
    let redundancy = if ctx.smoke() { 3 } else { 5 };
    let secrets: &[u8] = if ctx.smoke() {
        &[0x13, 0x77]
    } else {
        &[0x13, 0x77, 0xC4, 0x6D]
    };
    let (vk, ak, vpt) = keys();
    let n_secrets = secrets.len();
    outln!(
        ctx,
        "{:>9}  {:>11}  {:>10}  {:>9}  {:>8}",
        "intensity",
        "bsaes naive",
        "bsaes vote",
        "urg naive",
        "urg vote"
    );
    let mut naive_at_midpoint = 8;
    for &intensity in intensities(ctx) {
        let noise = NoiseConfig::at_intensity(intensity, ctx.seed())
            .with_window(BSAES_WINDOW.0, BSAES_WINDOW.1);
        let naive = bsaes_slices_recovered(noise, 1)?;
        let voted = bsaes_slices_recovered(noise, redundancy)?;
        if intensity == MIDPOINT {
            naive_at_midpoint = naive;
        }
        let mut urg = UrgAttack::new(3);
        for (i, &b) in secrets.iter().enumerate() {
            urg.plant_secret(SECRET_ADDR + i as u64, b);
        }
        urg.set_noise(NoiseConfig::at_intensity(
            intensity,
            ctx.seed().wrapping_add(0xa11ce),
        ));
        let mut urg_naive = 0usize;
        let mut urg_vote = 0usize;
        for (i, &b) in secrets.iter().enumerate() {
            let addr = SECRET_ADDR + i as u64;
            if urg.leak_byte_vote(addr, 1)? == Some(b) {
                urg_naive += 1;
            }
            if urg.leak_byte_vote(addr, redundancy)? == Some(b) {
                urg_vote += 1;
            }
        }
        outln!(
            ctx,
            "{:>9}  {:>9}/8  {:>8}/8  {:>7}/{}  {:>6}/{}",
            intensity,
            naive,
            voted,
            urg_naive,
            n_secrets,
            urg_vote,
            n_secrets
        );
    }

    // Acceptance at the midpoint: the hardened receiver recovers the
    // whole key (trading samples for accuracy); the single sweep does
    // not keep all eight slices.
    ctx.header("Midpoint acceptance");
    outln!(
        ctx,
        "single-sweep receiver at intensity {MIDPOINT}: {naive_at_midpoint}/8 slices"
    );
    if naive_at_midpoint >= 8 {
        return Err(Failure::new(format!(
            "the non-hardened receiver must measurably degrade at intensity \
             {MIDPOINT}: recovered {naive_at_midpoint}/8 slices"
        )));
    }
    let mut atk = BsaesAttack::new(vk, ak, vpt, 0);
    atk.set_noise(
        NoiseConfig::at_intensity(MIDPOINT, ctx.seed())
            .with_window(BSAES_WINDOW.0, BSAES_WINDOW.1),
    );
    let recovered = atk.recover_key_vote(
        |k| {
            let truth = BsaesAttack::new(vk, ak, vpt, k).true_slice_value();
            let lo = truth.wrapping_sub(2);
            (0..5).map(|d| lo.wrapping_add(d)).collect()
        },
        MIN_GAP,
        redundancy,
    )?;
    outln!(
        ctx,
        "majority-vote receiver (redundancy {redundancy}): recovered key {}",
        match recovered {
            Some(k) => format!("{k:02x?}"),
            None => "none".to_string(),
        }
    );
    if recovered != Some(vk) {
        return Err(Failure::new(format!(
            "majority-vote BSAES must recover the victim key at intensity \
             {MIDPOINT}: got {recovered:02x?}"
        )));
    }
    outln!(ctx, "all 16 key bytes recovered under midpoint noise");
    Ok(())
}
