//! The experiment registry: every table/figure/e-experiment of the
//! paper as a [`pandora_runner::Experiment`] with a smoke and a full
//! profile.
//!
//! Experiment bodies write all output through the [`Ctx`] report
//! handle (never stdout) so the orchestrator can publish results
//! atomically, salvage partial output from a panicking or wedged run,
//! and hash outputs for determinism re-verification on resume.

use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use pandora_runner::{partial_results, Ctx, Experiment, Failure, Profile, Registry};

pub mod e10_stateless_opts;
pub mod e11_stateful_opts;
pub mod e12_rfc;
pub mod e14_defenses;
pub mod e15_sv_vs_sn_performance;
pub mod e16_noise_robustness;
pub mod e17_scan_service;
pub mod e9_replay_recovery;
pub mod fig2_fig3_mlds;
pub mod fig4_cases;
pub mod fig5_amplification;
pub mod fig6_bsaes_hist;
pub mod fig7_urg;
pub mod table1;
pub mod table2;

/// The full suite, in the paper's presentation order.
#[must_use]
pub fn registry() -> Registry {
    Registry::new()
        .with(table1::experiment())
        .with(table2::experiment())
        .with(fig2_fig3_mlds::experiment())
        .with(fig4_cases::experiment())
        .with(fig5_amplification::experiment())
        .with(fig6_bsaes_hist::experiment())
        .with(fig7_urg::experiment())
        .with(e9_replay_recovery::experiment())
        .with(e10_stateless_opts::experiment())
        .with(e11_stateful_opts::experiment())
        .with(e12_rfc::experiment())
        .with(e14_defenses::experiment())
        .with(e15_sv_vs_sn_performance::experiment())
        .with(e16_noise_robustness::experiment())
        .with(e17_scan_service::experiment())
}

/// Adds the two fault-injection selftests (`runall --selftest`): one
/// experiment that panics mid-run and one that wedges until its
/// deadline. Both must degrade to `partial` while the rest of the
/// suite completes `ok` — the orchestration-level analogue of the
/// simulator's fault-injection acceptance tests.
#[must_use]
pub fn with_selftests(registry: Registry) -> Registry {
    fn panic_body(ctx: &Ctx) -> Result<(), Failure> {
        ctx.header("Selftest: injected panic");
        ctx.line(format_args!(
            "this line is the partial result; the next statement panics"
        ));
        panic!("injected selftest panic (expected; must degrade to partial)");
    }
    fn wedge_body(ctx: &Ctx) -> Result<(), Failure> {
        ctx.header("Selftest: injected wedge");
        ctx.line(format_args!(
            "this line is the partial result; the body now sleeps past its deadline"
        ));
        // A deliberate wedge: ignore the cooperative deadline forever.
        // The orchestrator's job watchdog must fire and abandon us.
        loop {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    registry
        .with(Experiment {
            name: "selftest_panic",
            title: "orchestrator selftest: a panicking experiment degrades to partial",
            run: panic_body,
            fingerprint: || 0x5e1f_7e57_0001,
            deadline: Duration::from_secs(10),
        })
        .with(Experiment {
            name: "selftest_wedge",
            title: "orchestrator selftest: a wedged experiment trips its deadline",
            run: wedge_body,
            fingerprint: || 0x5e1f_7e57_0002,
            deadline: Duration::from_secs(2),
        })
}

/// The suite seed every standalone bin runs under (and `runall`'s
/// default): keeps archived `results/*.txt` reproducible.
pub const DEFAULT_SEED: u64 = 0;

/// Uniform `main` for the thin bench-bin wrappers: parses `--smoke`
/// (profile) plus pass-through flags, runs the named experiment with
/// panic isolation under its deadline, prints the report, publishes
/// `results/<name>.txt` atomically, and exits nonzero with partial
/// results on failure.
///
/// # Panics
///
/// If `name` is not in the registry (a wiring bug, not a runtime
/// condition).
#[must_use]
pub fn standalone(name: &str) -> ExitCode {
    let registry = registry();
    let exp = registry
        .get(name)
        .unwrap_or_else(|| panic!("experiment {name:?} is not registered"));
    let mut profile = Profile::Full;
    let mut opts = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => profile = Profile::Smoke,
            "--help" | "-h" => {
                eprintln!(
                    "usage: {name} [--smoke]{}",
                    if name == "e9_replay_recovery" {
                        " [--full-slice]"
                    } else {
                        ""
                    }
                );
                return ExitCode::SUCCESS;
            }
            _ => opts.push(arg),
        }
    }
    let outcome = partial_results::standalone_run(
        exp,
        profile,
        DEFAULT_SEED,
        &opts,
        Some(Path::new("results")),
    );
    partial_results::exit_code(name, &outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_match_bins_and_are_complete() {
        let r = registry();
        let names: Vec<&str> = r.all().iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec![
                "table1",
                "table2",
                "fig2_fig3_mlds",
                "fig4_cases",
                "fig5_amplification",
                "fig6_bsaes_hist",
                "fig7_urg",
                "e9_replay_recovery",
                "e10_stateless_opts",
                "e11_stateful_opts",
                "e12_rfc",
                "e14_defenses",
                "e15_sv_vs_sn_performance",
                "e16_noise_robustness",
                "e17_scan_service",
            ],
            "all 15 registered experiments, paper order"
        );
    }

    #[test]
    fn selftests_register_on_top() {
        let r = with_selftests(registry());
        assert!(r.get("selftest_panic").is_some());
        assert!(r.get("selftest_wedge").is_some());
        assert_eq!(r.all().len(), 17);
    }

    #[test]
    fn fingerprints_are_stable_within_a_build() {
        let r = registry();
        for e in r.all() {
            assert_eq!((e.fingerprint)(), (e.fingerprint)(), "{}", e.name);
        }
    }
}
