//! **Table II** — the classification of each optimization class by its
//! MLD input signature: stateless instruction-centric, stateful
//! instruction-centric (Uarch/Arch), or memory-centric. Smoke and full
//! profiles are identical.

use std::time::Duration;

use pandora_core::render_table2;
use pandora_runner::{Ctx, Experiment, Failure};
use pandora_sim::SimConfig;

/// Registry entry.
#[must_use]
pub fn experiment() -> Experiment {
    Experiment {
        name: "table2",
        title: "Table II: optimization classification by MLD signature",
        run,
        fingerprint: || SimConfig::default().stable_hash(),
        deadline: Duration::from_secs(30),
    }
}

fn run(ctx: &Ctx) -> Result<(), Failure> {
    ctx.header("Table II: optimization classification by MLD signature");
    ctx.line(format_args!("{}", render_table2().trim_end()));
    Ok(())
}
