//! **§VI-A defense retrofits**, measured: each row is a leak magnitude
//! (cycles) before and after the mitigation. Smoke and full profiles
//! are identical.

use std::time::Duration;

use pandora_attacks::defense::{
    msb_retrofit_vs_packing, sn_keying_vs_reuse, targeted_clearing_vs_silent_stores,
};
use pandora_runner::{outln, Ctx, Experiment, Failure};
use pandora_sim::SimConfig;

/// Registry entry.
#[must_use]
pub fn experiment() -> Experiment {
    Experiment {
        name: "e14_defenses",
        title: "E14: §VI-A defense retrofits (leak before/after)",
        run,
        fingerprint: || SimConfig::default().stable_hash(),
        deadline: Duration::from_secs(120),
    }
}

fn run(ctx: &Ctx) -> Result<(), Failure> {
    ctx.header("E14: defense retrofits (§VI-A)");
    outln!(
        ctx,
        "{:<46} {:>12} {:>12}",
        "mitigation",
        "leak before",
        "leak after"
    );
    let rows = [
        (
            "OR-1-into-MSB vs operand packing (§VI-A2)",
            msb_retrofit_vs_packing(),
        ),
        (
            "Sn register-id keying vs reuse (§VI-A3)",
            sn_keying_vs_reuse(),
        ),
        (
            "targeted clearing vs silent stores (§VI-A2)",
            targeted_clearing_vs_silent_stores(),
        ),
    ];
    for (name, o) in rows {
        outln!(
            ctx,
            "{:<46} {:>12} {:>12}",
            name,
            o.unmitigated_delta,
            o.mitigated_delta
        );
    }
    outln!(
        ctx,
        "\nPaper claim: retrofits can restore security — the open question is\n\
         doing so while keeping the optimizations' performance benefit."
    );
    Ok(())
}
