//! **Figure 1 / Figure 7 / §V-B** — the universal read gadget: a
//! verified eBPF-style sandbox program steers the 3-level
//! indirect-memory prefetcher to read attacker-chosen bytes outside
//! the sandbox and transmit them over a cache covert channel.
//!
//! Also reports the §IV-D4 comparison: the 2-level IMP does *not* form
//! a URG (its probe results are secret-independent).
//!
//! The byte-leak step runs under a `RetryPolicy` with an injected
//! fault wedging the first attempt, demonstrating the hardened driver.
//! The smoke profile keeps the verifier check, the single-byte leak,
//! the retry demonstration and the 2-level comparison, skipping the
//! string dump, the prefetch-buffer variant and the Δ sweep.

use std::time::Duration;

use pandora_attacks::UrgAttack;
use pandora_channels::RetryPolicy;
use pandora_runner::{outln, Ctx, Experiment, Failure};
use pandora_sandbox::verify;
use pandora_sim::{FaultKind, FaultPlan, OptConfig, SimConfig};

const SECRET_ADDR: u64 = 0x20_0000;
const SECRET: &[u8] = b"PANDORA!";

/// Registry entry.
#[must_use]
pub fn experiment() -> Experiment {
    Experiment {
        name: "fig7_urg",
        title: "Fig 1 + Fig 7: DMP universal read gadget",
        run,
        fingerprint: || SimConfig::with_opts(OptConfig::with_dmp(3)).stable_hash(),
        deadline: Duration::from_secs(180),
    }
}

fn run(ctx: &Ctx) -> Result<(), Failure> {
    ctx.header("Fig 7a: the attacker program passes the verifier");
    let mut atk3 = {
        let mut a = UrgAttack::new(3);
        for (i, &b) in SECRET.iter().enumerate() {
            a.plant_secret(SECRET_ADDR + i as u64, b);
        }
        a
    };
    outln!(
        ctx,
        "verifier: {:?} (null-checked X[Y[Z[i]]] loop + timed probe)",
        verify(atk3.program()).map(|_| "ACCEPTED")
    );
    let (lo, hi) = atk3.layout().region();
    outln!(
        ctx,
        "sandbox region: [{lo:#x}, {hi:#x}); secret at {SECRET_ADDR:#x} (outside)"
    );

    ctx.header("3-level IMP: leaking one byte");
    let (first, machine) = atk3.try_run(SECRET_ADDR, 1)?;
    let hot: Vec<(usize, u64)> = first
        .timings
        .iter()
        .enumerate()
        .filter(|&(_, &t)| t < 60)
        .map(|(i, &t)| (i, t))
        .collect();
    outln!(ctx, "hot X lines (line index, probe cycles): {hot:?}");
    outln!(ctx, "training lines excluded: 1, 2, 3");
    outln!(
        ctx,
        "candidates: {:?}  (planted secret byte: {:#x})",
        first.candidates,
        SECRET[0]
    );
    outln!(
        ctx,
        "prefetcher dereferenced the private address: {}",
        UrgAttack::deref_addresses(&machine).contains(&SECRET_ADDR)
    );

    ctx.header("Robustness: leaking through an injected wedge");
    atk3.set_fault_plan(Some(FaultPlan::single(500, FaultKind::DroppedCompletion)));
    let policy = RetryPolicy::default();
    let leaked = atk3.leak_byte_with_retry(SECRET_ADDR, &policy)?;
    outln!(
        ctx,
        "leaked {leaked:02x?} (expected {:#x}) despite a DroppedCompletion \
         fault on the first attempt",
        SECRET[0]
    );
    atk3.set_fault_plan(None);
    if leaked != Some(SECRET[0]) {
        return Err(Failure::new(format!(
            "retrying driver failed to land the attack: got {leaked:?}, want {:#x}",
            SECRET[0]
        )));
    }

    if !ctx.smoke() {
        ctx.header("Universal read gadget: dumping a secret string");
        let dumped = atk3.dump(SECRET_ADDR, SECRET.len());
        let recovered: String = dumped
            .iter()
            .map(|b| b.map_or('?', |v| v as char))
            .collect();
        outln!(ctx, "planted:   {:?}", String::from_utf8_lossy(SECRET));
        outln!(ctx, "recovered: {recovered:?}");

        ctx.header("§V-B3: prefetch buffers aggravate but do not mitigate");
        let mut buffered = UrgAttack::with_fill(3, pandora_sim::PrefetchFill::L2Only);
        buffered.plant_secret(SECRET_ADDR, SECRET[0]);
        outln!(
            ctx,
            "L2-only fills (prefetch-buffer model): leaked {:?} (expected {:#x})",
            buffered.leak_byte(SECRET_ADDR),
            SECRET[0]
        );
    }

    ctx.header("§IV-D4: the 2-level IMP is not a URG");
    let run2a = {
        let mut a = UrgAttack::new(2);
        a.plant_secret(SECRET_ADDR, 0x11);
        a.try_run(SECRET_ADDR, 1)?.0
    };
    let run2b = {
        let mut a = UrgAttack::new(2);
        a.plant_secret(SECRET_ADDR, 0xEE);
        a.try_run(SECRET_ADDR, 1)?.0
    };
    outln!(
        ctx,
        "2-level candidates for secret 0x11: {:?}; for 0xEE: {:?}  (identical: {})",
        run2a.candidates,
        run2b.candidates,
        run2a.candidates == run2b.candidates
    );

    if ctx.smoke() {
        outln!(
            ctx,
            "\n(smoke profile: skipping the string dump, prefetch-buffer\n\
             variant and Δ sweep)"
        );
        return Ok(());
    }

    ctx.header("§IV-D4: the 2-level leak window grows with Δ");
    outln!(
        ctx,
        "{:<8} {:>18} {:>26}",
        "Δ",
        "max deref addr",
        "elements past Z's end (b)"
    );
    for delta in [1u64, 4, 16] {
        let mut a = UrgAttack::with_fill_and_distance(
            2,
            pandora_sim::PrefetchFill::AllLevels,
            delta,
        );
        a.plant_secret(SECRET_ADDR, 0x33);
        let (_, m) = a.try_run(SECRET_ADDR, 1)?;
        let max_deref = UrgAttack::deref_addresses(&m).into_iter().max().unwrap_or(0);
        let z_end = a.layout().map_base(0) + 16 * 8; // Z: 16 x u64
        let past = (max_deref as i64 - z_end as i64) / 8;
        outln!(ctx, "{:<8} {:>18} {:>26}", delta, format!("{max_deref:#x}"), past);
    }
    outln!(
        ctx,
        "the prefetcher's reach past the stream array stays within Δ
         elements — the paper's [b, b+Δ) window."
    );

    outln!(
        ctx,
        "\nPaper claim: the 3-level IMP forms a universal read gadget in the\n\
         sandbox setting; the 2-level IMP leaks only a Δ-element window\n\
         past the stream array."
    );
    Ok(())
}
