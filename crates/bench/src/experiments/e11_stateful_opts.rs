//! **§IV-C stateful-optimization equality oracles**: computation reuse
//! and value prediction, including the §IV-C4 replay attack recovering
//! a byte in ≤ 2^8 experiments. Smoke and full profiles are identical.

use std::time::Duration;

use pandora_attacks::stateful::{
    recover_byte_by_replay, reuse_equality_cycles, vp_equality_cycles,
};
use pandora_runner::{outln, Ctx, Experiment, Failure};
use pandora_sim::{ReuseKey, SimConfig};

/// Registry entry.
#[must_use]
pub fn experiment() -> Experiment {
    Experiment {
        name: "e11_stateful_opts",
        title: "E11: §IV-C stateful-optimization equality oracles + replay",
        run,
        fingerprint: || SimConfig::default().stable_hash(),
        deadline: Duration::from_secs(120),
    }
}

fn run(ctx: &Ctx) -> Result<(), Failure> {
    ctx.header("E11a: computation reuse (Sv) equality oracle");
    let secret = 0xCAFEu64;
    outln!(ctx, "{:<12} {:>10}", "guess", "cycles");
    for g in [0xCAFEu64, 0xCAFF, 0xBEEF, 0x0000] {
        let marker = if g == secret { "  <- equal (hit)" } else { "" };
        outln!(
            ctx,
            "{:<12} {:>10}{marker}",
            format!("{g:#x}"),
            reuse_equality_cycles(secret, g, ReuseKey::Values)
        );
    }

    ctx.header("E11b: value prediction equality oracle");
    let secret = 0x1111u64;
    for g in [0x1111u64, 0x1112, 0x2222] {
        let marker = if g == secret {
            "  <- equal (no squashes)"
        } else {
            ""
        };
        outln!(
            ctx,
            "{:<12} {:>10}{marker}",
            format!("{g:#x}"),
            vp_equality_cycles(secret, g)
        );
    }

    ctx.header("E11c: §IV-C4 replay — byte recovery in 2^8 experiments");
    let secret = 0x5Au64;
    let got = recover_byte_by_replay(|g| reuse_equality_cycles(secret, g, ReuseKey::Values));
    outln!(
        ctx,
        "secret byte {secret:#04x}, recovered by 256-guess replay: {got:02x?}"
    );
    outln!(
        ctx,
        "\nPaper claim: because these optimizations check for equality, the\n\
         attacker can learn each value exactly via replays — 2^8 tries for\n\
         a byte, 2^32 for a word."
    );
    Ok(())
}
