//! **§VI-A3 performance-vs-security comparison** for computation
//! reuse: the Sv (value-keyed) scheme reuses the most but leaks
//! operand values; the Sn (register-id-keyed) scheme closes the value
//! oracle while retaining part of the benefit — "we know how to, in
//! some instances, architect still efficient and more secure
//! microarchitecture."
//!
//! Two workloads:
//!
//! 1. a redundant-computation microkernel (a loop recomputing the same
//!    expressions every iteration — the compiler-redundancy pattern
//!    reuse was invented for), where Sv and Sn genuinely diverge;
//! 2. the repository's bitsliced AES, whose 30 k-instruction
//!    straight-line body thrashes a realistic direct-mapped memo table
//!    — an honest negative datapoint. The smoke profile skips this
//!    second (expensive) workload.

use std::time::Duration;

use pandora_crypto::codegen::{emit_encrypt, BsaesLayout};
use pandora_crypto::RoundKeys;
use pandora_isa::{Asm, Reg};
use pandora_runner::{outln, Ctx, Experiment, Failure};
use pandora_sim::{Machine, OptConfig, ReuseKey, SimConfig, SimStats};

/// Registry entry.
#[must_use]
pub fn experiment() -> Experiment {
    Experiment {
        name: "e15_sv_vs_sn_performance",
        title: "E15: §VI-A3 Sv vs Sn performance/security comparison",
        run,
        fingerprint: || SimConfig::default().stable_hash(),
        deadline: Duration::from_secs(300),
    }
}

fn opts_for(key: Option<ReuseKey>) -> OptConfig {
    let mut o = OptConfig::baseline();
    if let Some(k) = key {
        o.comp_reuse = true;
        o.reuse_key = k;
        o.reuse_entries = 512;
    }
    o
}

/// A loop that redundantly recomputes expressions over loop-invariant
/// inputs: every multiply/divide sees identical operands each trip.
fn run_redundant_kernel(opts: OptConfig) -> Result<SimStats, Failure> {
    let mut a = Asm::new();
    a.li(Reg::S0, 12345); // loop-invariant inputs
    a.li(Reg::S1, 678);
    a.li(Reg::S2, 31);
    a.li(Reg::T6, 200);
    a.label("l");
    // Redundant work: same operands every iteration, heavy on the
    // single multiply/divide port.
    a.mul(Reg::A0, Reg::S0, Reg::S1);
    a.divu(Reg::A1, Reg::S0, Reg::S2);
    a.mul(Reg::A2, Reg::S1, Reg::S2);
    a.mul(Reg::A4, Reg::S0, Reg::S2);
    a.divu(Reg::A5, Reg::S1, Reg::S0);
    a.mul(Reg::S3, Reg::S2, Reg::S0);
    // A dependent chain so the latencies matter.
    a.xor(Reg::A3, Reg::A0, Reg::A1);
    a.xor(Reg::A3, Reg::A3, Reg::A2);
    a.xor(Reg::A3, Reg::A3, Reg::A4);
    a.xor(Reg::A3, Reg::A3, Reg::A5);
    a.xor(Reg::A3, Reg::A3, Reg::S3);
    a.xor(Reg::T5, Reg::A3, Reg::A3);
    a.add(Reg::T6, Reg::T6, Reg::T5);
    a.addi(Reg::T6, Reg::T6, -1);
    a.bnez(Reg::T6, "l");
    a.halt();
    let prog = a.assemble()?;
    let mut m = Machine::new(SimConfig::with_opts(opts));
    m.load_program(&prog);
    Ok(m.run(1_000_000)?)
}

/// Two back-to-back encryptions through one static BSAES body.
fn run_bsaes(opts: OptConfig) -> Result<SimStats, Failure> {
    let lay = BsaesLayout::at(0x1_0000);
    let mut a = Asm::new();
    a.li(Reg::S11, 2);
    a.label("enc");
    emit_encrypt(&mut a, &lay, |_, _, _| {});
    a.addi(Reg::S11, Reg::S11, -1);
    a.bnez(Reg::S11, "enc");
    a.halt();
    let prog = a.assemble()?;
    let rk = RoundKeys::expand(&[0x5Au8; 16]);
    let mut m = Machine::new(SimConfig::with_opts(opts));
    m.load_program(&prog);
    m.mem_mut()
        .write_bytes(lay.rk, &BsaesLayout::round_key_bytes(&rk))?;
    m.mem_mut().write_bytes(lay.pt, &[0xA5; 16])?;
    Ok(m.run(5_000_000)?)
}

fn table(
    ctx: &Ctx,
    title: &str,
    run: impl Fn(OptConfig) -> Result<SimStats, Failure>,
) -> Result<(), Failure> {
    ctx.header(title);
    outln!(
        ctx,
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "scheme",
        "cycles",
        "hits",
        "misses",
        "hit rate"
    );
    for (name, key) in [
        ("off (baseline)", None),
        ("Sv (operand values)", Some(ReuseKey::Values)),
        ("Sn (register ids)", Some(ReuseKey::RegIds)),
    ] {
        let s = run(opts_for(key))?;
        let total = s.reuse_hits + s.reuse_misses;
        outln!(
            ctx,
            "{:<22} {:>10} {:>10} {:>10} {:>9.1}%",
            name,
            s.cycles,
            s.reuse_hits,
            s.reuse_misses,
            if total == 0 {
                0.0
            } else {
                100.0 * s.reuse_hits as f64 / total as f64
            }
        );
    }
    Ok(())
}

fn run(ctx: &Ctx) -> Result<(), Failure> {
    table(
        ctx,
        "E15a: redundant-computation kernel (loop-invariant operands)",
        run_redundant_kernel,
    )?;
    outln!(
        ctx,
        "Sv memoizes every redundant op; Sn keeps only the entries whose\n\
         source registers are never redefined — faster than baseline,\n\
         slower than Sv, and with the operand-value oracle closed."
    );
    if ctx.smoke() {
        outln!(ctx, "\n(smoke profile: skipping the BSAES x2 workload)");
        return Ok(());
    }
    table(
        ctx,
        "E15b: bitsliced AES x2 (30k straight-line instructions, 512-entry table)",
        run_bsaes,
    )?;
    outln!(
        ctx,
        "A realistic direct-mapped table thrashes on a straight-line body\n\
         this large: no reuse for either scheme — reuse is a hot-loop\n\
         optimization, which is also where its leak bites."
    );
    Ok(())
}
