//! **Figures 2 and 3** — the nine example MLDs — as executable
//! objects: for each, its input signature, the partition size |S| over
//! a representative input enumeration, and the resulting
//! channel-capacity upper bound log2|S| (§IV-A3). Smoke and full
//! profiles are identical (the enumerations are small).

use std::collections::HashMap;
use std::time::Duration;

use pandora_core::examples::{
    CacheModel, DataMemory, Im3lPrefetcher, ImpState, InstructionReuse, OperandPacking,
    RfCompression, SilentStores, SingleCycleAlu, ValuePrediction, VpEntry, ZeroSkipMul,
};
use pandora_core::mld::{capacity_bits, partition_size, Mld};
use pandora_runner::{outln, Ctx, Experiment, Failure};
use pandora_sim::SimConfig;

/// Registry entry.
#[must_use]
pub fn experiment() -> Experiment {
    Experiment {
        name: "fig2_fig3_mlds",
        title: "Fig 2 + Fig 3: example MLDs and their capacity bounds",
        run,
        fingerprint: || SimConfig::default().stable_hash(),
        deadline: Duration::from_secs(60),
    }
}

fn report<M: Mld>(ctx: &Ctx, mld: &M, inputs: impl IntoIterator<Item = M::Input>) {
    let sig: Vec<String> = mld.signature().iter().map(ToString::to_string).collect();
    let n = partition_size(mld, inputs);
    outln!(
        ctx,
        "{:<18} ({:<18}) |S| = {:>5}   capacity <= {:.2} bits",
        mld.name(),
        sig.join(", "),
        n,
        capacity_bits(n)
    );
}

fn run(ctx: &Ctx) -> Result<(), Failure> {
    ctx.header("Fig 2: example MLDs from prior-work structures");
    report(
        ctx,
        &SingleCycleAlu,
        (0..64u64).flat_map(|a| (0..64u64).map(move |b| (a, b))),
    );
    report(
        ctx,
        &ZeroSkipMul,
        (0..64u64).flat_map(|a| (0..64u64).map(move |b| (a, b))),
    );
    let sets = 8u64;
    report(
        ctx,
        &pandora_core::examples::CacheRand,
        (0..4096u64).step_by(64).flat_map(move |addr| {
            let cold = CacheModel::new(sets, 64);
            let mut warm = CacheModel::new(sets, 64);
            warm.insert(addr);
            [(addr, cold), (addr, warm)]
        }),
    );

    ctx.header("Fig 3: example MLDs for the studied optimization classes");
    report(
        ctx,
        &OperandPacking,
        (0..4u64).flat_map(|a| {
            (0..4u64).map(move |b| {
                let wide = |x: u64| if x & 1 == 1 { 1u64 << 20 } else { x };
                ((wide(a), 1), (wide(b), 2))
            })
        }),
    );
    report(
        ctx,
        &SilentStores,
        (0..32u64).map(|v| {
            let mut mem = DataMemory::new();
            mem.insert(0x40, 7);
            (0x40u64, v, mem)
        }),
    );
    report(
        ctx,
        &InstructionReuse,
        (0..32u64).map(|v| {
            let mut buf = HashMap::new();
            buf.insert(100u64, [3u64, 4u64]);
            (100u64, [v, 4u64], buf)
        }),
    );
    report(
        ctx,
        &ValuePrediction { conf_domain: 4 },
        (0..4u64).flat_map(|conf| {
            (0..8u64).map(move |dst| {
                let mut t = HashMap::new();
                t.insert(
                    10u64,
                    VpEntry {
                        conf,
                        prediction: 3,
                    },
                );
                (10u64, dst, t)
            })
        }),
    );
    report(
        ctx,
        &RfCompression,
        (0..256u64).map(|mask| {
            (0..8)
                .map(|i| if (mask >> i) & 1 == 1 { 0u64 } else { 0xdead })
                .collect::<Vec<u64>>()
        }),
    );
    report(
        ctx,
        &Im3lPrefetcher,
        (0..64u64).map(|secret| {
            let cache = CacheModel::new(8, 64);
            let imp = ImpState {
                base_z: 0x1000,
                base_y: 0x2000,
                base_x: 0x4000,
                start: 0,
            };
            let mut mem = DataMemory::new();
            mem.insert(0x1000, 0x100);
            mem.insert(0x2100, secret * 64);
            (imp, cache, mem)
        }),
    );
    outln!(
        ctx,
        "\nThe 3-level IMP's outcome varies with the *private memory value*\n\
         (data at rest): the partition above is over secrets alone."
    );
    Ok(())
}
