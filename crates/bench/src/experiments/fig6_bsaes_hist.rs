//! **Figure 6** — the histogram of BSAES runtimes when the
//! amplification gadget is applied to one of the eight stores that
//! overwrite AES state, for a correct vs incorrect guess of the
//! victim's 16-bit slice value.
//!
//! Cache-state noise is injected per trial (pseudo-random line
//! preconditioning), as the paper's experiment environment does
//! naturally; the two populations must remain cleanly separated
//! (>100 cycles between modes).
//!
//! The experiment first demonstrates robustness: a fault plan wedges
//! the pipeline on the first measurement attempt, and the
//! `RetryPolicy` recovers on a clean re-run. The smoke profile drops
//! the trial count from 40 to 12 and shrinks the robustness window
//! from 6 to 3 guesses.

use std::time::Duration;

use pandora_attacks::{BsaesAttack, GuessJob};
use pandora_channels::{welch_t, Histogram, RetryPolicy, Summary};
use pandora_runner::{outln, Ctx, Experiment, Failure};
use pandora_sim::{FaultKind, FaultPlan, OptConfig, SimConfig, SimError};

const BUCKET: u64 = 20;

/// Registry entry.
#[must_use]
pub fn experiment() -> Experiment {
    Experiment {
        name: "fig6_bsaes_hist",
        title: "Fig 6: BSAES runtime histogram (correct vs incorrect guess)",
        run,
        fingerprint: || SimConfig::with_opts(OptConfig::with_silent_stores()).stable_hash(),
        deadline: Duration::from_secs(300),
    }
}

fn run(ctx: &Ctx) -> Result<(), Failure> {
    let trials: usize = if ctx.smoke() { 12 } else { 40 };
    let victim_key: [u8; 16] = std::array::from_fn(|i| (i * 13 + 7) as u8);
    let attacker_key: [u8; 16] = std::array::from_fn(|i| (i * 31 + 5) as u8);
    let victim_pt: [u8; 16] = std::array::from_fn(|i| (i * 3) as u8);
    let mut atk = BsaesAttack::new(victim_key, attacker_key, victim_pt, 0);
    let truth = atk.true_slice_value();

    // Robustness check: a dropped completion wedges the pipeline on the
    // first attempt at every guess; the watchdog surfaces it as a
    // structured deadlock and the retry policy lands the attack on a
    // clean re-run.
    ctx.header("Robustness: recovering the slice through an injected wedge");
    atk.set_fault_plan(Some(FaultPlan::single(200, FaultKind::DroppedCompletion)));
    let policy = RetryPolicy::default();
    let window = if ctx.smoke() {
        (truth.wrapping_sub(1)..=truth.wrapping_add(1)).collect::<Vec<u16>>()
    } else {
        (truth.wrapping_sub(3)..=truth.wrapping_add(2)).collect::<Vec<u16>>()
    };
    let recovered = atk.recover_slice_with_retry(window, 60, &policy)?;
    outln!(
        ctx,
        "recovered slice {recovered:04x?} (truth {truth:#06x}) despite a \
         DroppedCompletion fault on every first attempt"
    );
    atk.set_fault_plan(None);
    if recovered != Some(truth) {
        return Err(Failure::new(format!(
            "retrying driver failed to land the attack: got {recovered:?}, want {truth:#06x}"
        )));
    }

    // All trials of one guess run as a single fleet grid (shared
    // program, recycled machines, work-stealing threads); the per-trial
    // preconditioning seed rides in each job, so the measurements are
    // bit-identical to the former serial loop.
    let seed0 = ctx.seed();
    atk.set_fleet_threads(ctx.fleet_threads());
    let measure = |guess: u16| -> Result<Vec<u64>, SimError> {
        let jobs: Vec<GuessJob> = (0..trials)
            .map(|t| GuessJob {
                guess,
                noise: None,
                noise_seed: Some(seed0.wrapping_add(t as u64 * 7919)),
            })
            .collect();
        Ok(atk
            .measure_guess_grid(&jobs)?
            .into_iter()
            .map(|o| o.cycles)
            .collect())
    };
    let correct = measure(truth)?;
    let incorrect = measure(truth ^ 0x0F0F)?;

    ctx.header("Fig 6: BSAES runtimes, amplified store silent (correct guess) vs not");
    outln!(ctx, "GuessType = Correct   ({trials} trials)");
    for (b, c, p) in Histogram::new(&correct, BUCKET).rows() {
        if c > 0 {
            outln!(ctx, "{}", crate::histogram_row(b, c, p, 50));
        }
    }
    outln!(ctx, "GuessType = Incorrect ({trials} trials)");
    for (b, c, p) in Histogram::new(&incorrect, BUCKET).rows() {
        if c > 0 {
            outln!(ctx, "{}", crate::histogram_row(b, c, p, 50));
        }
    }

    let (sc, si) = (Summary::of(&correct), Summary::of(&incorrect));
    ctx.header("Separation");
    outln!(ctx, "correct:   mean {:.1}  std {:.1}", sc.mean, sc.std());
    outln!(ctx, "incorrect: mean {:.1}  std {:.1}", si.mean, si.std());
    outln!(
        ctx,
        "mode gap: {} cycles   Welch t = {:.1}",
        (si.mean - sc.mean).round(),
        welch_t(&incorrect, &correct)
    );
    outln!(
        ctx,
        "\nPaper claim: a single dynamic silent store creates a large,\n\
         easily distinguishable (>100 cycle) difference between the two\n\
         histograms."
    );
    Ok(())
}
