//! **Figure 4** — the four possible sequences of actions a store takes
//! under the read-port-stealing silent-store scheme — by constructing
//! a micro-program for each case and printing the simulator's event
//! timeline for the target store.
//!
//! * **A** — SS-load returns, values equal → silent dequeue,
//! * **B** — SS-load returns, values differ → performed normally,
//! * **C** — no free load port at store execute → never checked,
//! * **D** — SS-load returns after the store is ready to perform.
//!
//! Smoke and full profiles are identical (four short programs).

use std::time::Duration;

use pandora_isa::{Asm, Reg};
use pandora_runner::{outln, Ctx, Experiment, Failure};
use pandora_sim::{Machine, OptConfig, SimConfig, TraceEvent};

/// Registry entry.
#[must_use]
pub fn experiment() -> Experiment {
    Experiment {
        name: "fig4_cases",
        title: "Fig 4: silent-store action sequences (cases A-D)",
        run,
        fingerprint: || SimConfig::with_opts(OptConfig::with_silent_stores()).stable_hash(),
        deadline: Duration::from_secs(60),
    }
}

const TARGET: u64 = 0x1_0000;

fn run_case(
    build: impl FnOnce(&mut Asm) -> usize,
    setup: impl FnOnce(&mut Machine) -> Result<(), Failure>,
) -> Result<(usize, Machine), Failure> {
    let mut a = Asm::new();
    let store_pc = build(&mut a);
    a.fence();
    a.halt();
    let prog = a.assemble()?;
    let mut m = Machine::new(SimConfig::with_opts(OptConfig::with_silent_stores()));
    m.enable_trace();
    m.load_program(&prog);
    setup(&mut m)?;
    m.run(1_000_000)?;
    Ok((store_pc, m))
}

fn show(ctx: &Ctx, case: &str, description: &str, store_pc: usize, m: &Machine) {
    ctx.header(&format!("Fig 4 case {case}: {description}"));
    for e in m.trace().store_timeline(store_pc) {
        outln!(ctx, "  {e:?}");
    }
}

fn run(ctx: &Ctx) -> Result<(), Failure> {
    // Case A: warm line, equal value -> silent.
    let (pc, m) = run_case(
        |a| {
            a.ld(Reg::T0, Reg::ZERO, TARGET as i64); // warm the line
            a.fence();
            a.li(Reg::T0, 42);
            let pc = a.here();
            a.sd(Reg::T0, Reg::ZERO, TARGET as i64);
            pc
        },
        |m| Ok(m.mem_mut().write_u64(TARGET, 42)?),
    )?;
    show(ctx, "A", "store value == loaded (silent store)", pc, &m);

    // Case B: warm line, different value -> performed.
    let (pc, m) = run_case(
        |a| {
            a.ld(Reg::T0, Reg::ZERO, TARGET as i64);
            a.fence();
            a.li(Reg::T0, 43);
            let pc = a.here();
            a.sd(Reg::T0, Reg::ZERO, TARGET as i64);
            pc
        },
        |m| Ok(m.mem_mut().write_u64(TARGET, 42)?),
    )?;
    show(ctx, "B", "store value != loaded (non-silent store)", pc, &m);

    // Case C: saturate both load ports with a stream of ready demand
    // loads so no port is free when the store's address resolves.
    let (pc, m) = run_case(
        |a| {
            a.li(Reg::T0, 42);
            let pc = a.here();
            a.sd(Reg::T0, Reg::ZERO, TARGET as i64);
            for i in 0..24i64 {
                a.ld(Reg::T1, Reg::ZERO, 0x2_0000 + 64 * i);
            }
            pc
        },
        |m| Ok(m.mem_mut().write_u64(TARGET, 42)?),
    )?;
    show(ctx, "C", "no free load port (never checked)", pc, &m);

    // Case D: cold line -> the SS-load takes a full miss and is still
    // outstanding when the committed store reaches the SQ head.
    let (pc, m) = run_case(
        |a| {
            a.li(Reg::T0, 42);
            let pc = a.here();
            a.sd(Reg::T0, Reg::ZERO, TARGET as i64);
            pc
        },
        |m| Ok(m.mem_mut().write_u64(TARGET, 42)?),
    )?;
    show(ctx, "D", "SS-load returns late (non-silent store)", pc, &m);

    // Summary row like the paper's prose: which case ended silent.
    ctx.header("Summary");
    outln!(
        ctx,
        "case A dequeues silently; B, C and D perform the store to the cache"
    );
    let silent_events = m
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::StoreSilentDequeue { .. }))
        .count();
    outln!(
        ctx,
        "(case D machine recorded {silent_events} silent dequeues, as expected: 0)"
    );
    Ok(())
}
