//! Performance-tracking layer: workloads, report format, and the
//! regression gate behind `cargo bench -p pandora-bench --bench perf`.
//!
//! The harness measures what the experiment suite actually spends its
//! time on — [`Machine::step`] throughput (quiet, under deterministic
//! noise, and on a [`DuoMachine`] with a traffic co-runner), one
//! prime+probe calibration round, and one fig5 amplification trial —
//! and records the numbers in two machine-readable files:
//!
//! * **`BENCH_5.json`** (repo root): the full report, plus the pre-PR
//!   step costs captured before the allocation-free hot-loop rework
//!   and the resulting speedup factors.
//! * **`BENCH_7.json`** (repo root): the report plus the fleet batch
//!   engine's headline number — per-trial cost of the E16-shaped
//!   sweep under pre-fleet provisioning (fresh assemble +
//!   `Machine::new` per trial) vs the fleet's pooled path
//!   ([`bench7_json`]).
//! * **`BENCH_10.json`** (repo root): the report plus the two-tier
//!   execution layer's headline number — per-trial cost of the fig5
//!   amplified trial under full replay vs forking from a shared
//!   mid-run [`Machine::snapshot`] checkpoint ([`bench10_json`]).
//! * **`results/perf_baseline.json`**: the committed baseline that CI
//!   gates against (`step/*` fastest-sample costs may not regress more
//!   than 20% — see [`PerfRecord::best_unit_ns`] for why the minimum,
//!   not the median, is compared), validated by `runall --smoke`.
//!
//! Everything here is dependency-free: the JSON writer and the small
//! recursive-descent reader below exist because the build environment
//! has no registry access (no serde).

use std::sync::Arc;

use pandora_attacks::{AmplifyGadget, FlushKind};
use pandora_isa::{Asm, Program, Reg};
use pandora_sim::fleet::MemberSpec;
use pandora_sim::noise::{traffic_program, NoiseConfig};
use pandora_sim::{Checkpoint, DuoMachine, Machine, OptConfig, SimConfig};

/// Target line of the fig5 silent-store gadget (matches
/// `experiments::fig5_amplification`).
pub const FIG5_TARGET: u64 = 0x1_0000;
/// Delay-chain line of the fig5 gadget.
pub const FIG5_DELAY: u64 = 0x8_0000;
/// Steps executed per measured iteration of the `step/*` benches.
pub const STEPS_PER_ITER: u64 = 1000;

/// Steady-state warmup for a quiet machine: enough steps for every
/// pipeline scratch buffer, cache set, and predictor table to reach
/// its high-water mark.
pub const QUIET_WARMUP_STEPS: u64 = 20_000;
/// Steady-state warmup under noise: the windowed fill/evict traffic
/// touches cache sets the workload never does, so set vectors keep
/// growing (amortized-doubling) far longer than in a quiet run.
pub const NOISY_WARMUP_STEPS: u64 = 150_000;

/// The quiet fig5 configuration (silent stores on, as in the golden
/// `FIG5_*` snapshots).
#[must_use]
pub fn fig5_quiet_config() -> SimConfig {
    SimConfig::with_opts(OptConfig::with_silent_stores())
}

/// The noisy fig5 configuration: pinned-seed environmental noise over
/// the gadget's window plus paranoid invariant checking — exactly the
/// `FIG5_NOISY` golden configuration.
#[must_use]
pub fn fig5_noisy_config() -> SimConfig {
    let mut cfg = fig5_quiet_config();
    cfg.noise = NoiseConfig::at_intensity(30, 0xfeed).with_window(0x1_0000, 0x2_0000);
    cfg.paranoid_checks = true;
    cfg
}

/// A never-halting fig5-shaped loop: a silent store to the target
/// line, a loud store next to it, two loads (target + delay chain),
/// ALU traffic, and a backward branch. Used by the `step/*` benches
/// and the zero-allocation steady-state test, which both need the
/// machine to survive an unbounded number of [`Machine::step`] calls.
#[must_use]
pub fn fig5_step_program() -> Program {
    let mut a = Asm::new();
    a.li(Reg::T0, FIG5_TARGET);
    a.li(Reg::T3, FIG5_DELAY);
    a.li(Reg::T6, 42); // the pre-seeded target value: the store below is silent
    a.label("spin");
    a.ld(Reg::T1, Reg::T0, 0);
    a.sd(Reg::T6, Reg::T0, 0);
    a.addi(Reg::T2, Reg::T2, 1);
    a.xor(Reg::T4, Reg::T4, Reg::T2);
    a.ld(Reg::T5, Reg::T3, 0);
    a.sd(Reg::T2, Reg::T0, 64);
    a.bnez(Reg::T0, "spin"); // T0 is never zero: spins forever
    a.halt(); // unreachable, but every program ends in a halt
    a.assemble().expect("fig5 step loop assembles")
}

/// Builds a machine running [`fig5_step_program`] under `cfg`, with
/// the target line pre-seeded so the gadget's store is silent.
#[must_use]
pub fn fig5_step_machine(cfg: SimConfig) -> Machine {
    let mut m = Machine::new(cfg);
    m.load_program(&fig5_step_program());
    m.mem_mut()
        .write_u64(FIG5_TARGET, 42)
        .expect("target is mapped");
    m
}

/// Builds the DuoMachine step workload: core A runs the fig5 loop,
/// core B runs a pseudo-random [`traffic_program`] over the shared-L2
/// window (with enough rounds that it outlives any measurement).
#[must_use]
pub fn duo_step_machine() -> DuoMachine {
    let a = fig5_step_machine(fig5_quiet_config());
    let mut b = Machine::new(fig5_quiet_config());
    b.load_program(&traffic_program(0x7ab7, 0x1_0000, 0x1_0000, u32::MAX as u64));
    DuoMachine::new(a, b)
}

/// Runs `steps` warmup steps, panicking on any simulation error (the step
/// workloads are constructed never to fault or halt).
pub fn warmup(m: &mut Machine, steps: u64) {
    for _ in 0..steps {
        m.step().expect("warmup step");
    }
}

// ---------------------------------------------------------------------------
// Fleet grid workload (the `fleet/*` vs `serial/*` benches)
// ---------------------------------------------------------------------------

/// One trial of the E16-shaped grid bench: a machine configuration
/// (noise intensity varies across the grid, geometry does not) and the
/// pre-seeded target value (equal to the stored 42 → silent store,
/// different → loud).
pub type GridJob = (SimConfig, u64);

/// The E16-shaped sweep the `fleet/e16_grid` / `serial/e16_grid`
/// benches both run: 8 amplified silent-store trials (alternating
/// silent/loud) at each of the five noise intensities the
/// `e16_noise_robustness` experiment sweeps. Every job is a pure
/// function of its entry — the two benches must produce identical
/// per-trial cycle counts, they differ only in how machines and
/// programs are provisioned.
#[must_use]
pub fn e16_grid_jobs() -> Vec<GridJob> {
    let base = fig5_quiet_config();
    let mut jobs = Vec::new();
    for intensity in [0u16, 15, 30, 45, 60] {
        for t in 0..8u64 {
            let mut cfg = base;
            if intensity > 0 {
                cfg.noise = NoiseConfig::at_intensity(intensity, t.wrapping_mul(7919))
                    .with_window(FIG5_TARGET, FIG5_TARGET + 0x1_0000);
            }
            jobs.push((cfg, if t % 2 == 0 { 42 } else { 41 }));
        }
    }
    jobs
}

/// The grid trial program: the fig5 amplified single-store measurement
/// (warm loads, contention gadget, target store, trailing stores).
/// Identical for every job in [`e16_grid_jobs`] — the grid varies
/// noise, not cache geometry, so the gadget's eviction-set layout is
/// the same everywhere. The serial bench nevertheless re-assembles it
/// per trial, because that is what the pre-fleet sweep loops did.
#[must_use]
pub fn e16_grid_program(cfg: &SimConfig) -> Program {
    let gadget = AmplifyGadget::new(cfg, FIG5_TARGET, FIG5_DELAY, FlushKind::Contention);
    let mut a = Asm::new();
    a.ld(Reg::T0, Reg::ZERO, FIG5_TARGET as i64);
    for i in 1..6i64 {
        a.ld(Reg::T0, Reg::ZERO, (FIG5_TARGET + 0x1000) as i64 + 64 * i);
    }
    a.fence();
    a.li(Reg::T0, 42);
    gadget.emit(&mut a);
    a.sd(Reg::T0, Reg::ZERO, FIG5_TARGET as i64);
    for i in 1..6i64 {
        a.sd(Reg::T0, Reg::ZERO, (FIG5_TARGET + 0x1000) as i64 + 64 * i);
    }
    a.fence();
    a.halt();
    a.assemble().expect("grid trial assembles")
}

/// Seeds one grid trial's memory (target value + gadget lines).
fn grid_prep(cfg: &SimConfig, old: u64, m: &mut Machine) {
    let gadget = AmplifyGadget::new(cfg, FIG5_TARGET, FIG5_DELAY, FlushKind::Contention);
    let mem = m.mem_mut();
    mem.write_u64(FIG5_TARGET, old).expect("target mapped");
    gadget.setup_memory(mem);
    gadget.setup_memory_flush_variant(mem);
}

/// The pre-fleet provisioning path, preserved verbatim as the bench
/// baseline: every trial assembles its own program and constructs (and
/// drops) its own machine — the shape of every sweep loop before the
/// fleet refactor.
#[must_use]
pub fn run_grid_serial(jobs: &[GridJob]) -> Vec<u64> {
    jobs.iter()
        .map(|&(cfg, old)| {
            let prog = e16_grid_program(&cfg);
            let mut m = Machine::new(cfg);
            m.load_program(&prog);
            grid_prep(&cfg, old, &mut m);
            m.run(1_000_000).expect("grid trial completes").cycles
        })
        .collect()
}

/// The fleet provisioning path: one shared `Arc`'d program, machines
/// recycled through the trial-grid pool ([`Machine::reset_to`]).
#[must_use]
pub fn run_grid_fleet(jobs: &[GridJob]) -> Vec<u64> {
    let prog = Arc::new(e16_grid_program(&jobs[0].0));
    let specs: Vec<MemberSpec> = jobs
        .iter()
        .map(|&(cfg, old)| {
            MemberSpec::new(cfg, Arc::clone(&prog))
                .with_max_cycles(1_000_000)
                .with_prep(move |m| {
                    grid_prep(&cfg, old, m);
                    Ok(())
                })
        })
        .collect();
    pandora_sim::fleet::trial_grid(&specs, 1, |_, _, stats| stats.cycles)
        .into_iter()
        .map(|r| r.expect("grid trial completes"))
        .collect()
}

/// The checkpoint provisioning path: program *and* gadget memory image
/// are baked once into a shared cycle-0 [`Checkpoint`]; every trial
/// forks from it, so per-trial prep shrinks to the single target-value
/// write. The per-job noise configuration rides in as a cycle-0 fork
/// override (`Machine::set_noise`), which is bit-equal to constructing
/// the noisy machine fresh. Per-trial cycle counts are identical to
/// both other paths — the unit-cost gap is pure provisioning overhead.
#[must_use]
pub fn run_grid_forked(jobs: &[GridJob]) -> Vec<u64> {
    let base = jobs[0].0;
    let prog = Arc::new(e16_grid_program(&base));
    let mut warm = Machine::new(base);
    warm.load_program(&prog);
    let gadget = AmplifyGadget::new(&base, FIG5_TARGET, FIG5_DELAY, FlushKind::Contention);
    gadget.setup_memory(warm.mem_mut());
    gadget.setup_memory_flush_variant(warm.mem_mut());
    let ck = Arc::new(warm.snapshot());
    let specs: Vec<MemberSpec> = jobs
        .iter()
        .map(|&(cfg, old)| {
            MemberSpec::new(cfg, Arc::clone(&prog))
                .with_start(Arc::clone(&ck))
                .with_max_cycles(1_000_000)
                .with_prep(move |m| {
                    m.mem_mut().write_u64(FIG5_TARGET, old).expect("target mapped");
                    Ok(())
                })
        })
        .collect();
    pandora_sim::fleet::trial_grid(&specs, 1, |_, _, stats| stats.cycles)
        .into_iter()
        .map(|r| r.expect("grid trial completes"))
        .collect()
}

// ---------------------------------------------------------------------------
// Checkpoint-vs-replay trial workload (the BENCH_10 comparison)
// ---------------------------------------------------------------------------

/// Builds the warm mid-run checkpoint of the `attack/fig5_amplified_trial`
/// workload: the amplified silent-store trial with its program loaded,
/// gadget memory baked, and the six warm loads plus the fence already
/// executed (seven committed instructions). The per-trial target write
/// happens *after* forking; `tests/golden_stats.rs` pins this fork as
/// byte-identical to a straight run.
#[must_use]
pub fn fig5_trial_checkpoint() -> Checkpoint {
    let cfg = fig5_quiet_config();
    let prog = e16_grid_program(&cfg);
    let mut warm = Machine::new(cfg);
    warm.load_program(&prog);
    let gadget = AmplifyGadget::new(&cfg, FIG5_TARGET, FIG5_DELAY, FlushKind::Contention);
    gadget.setup_memory(warm.mem_mut());
    gadget.setup_memory_flush_variant(warm.mem_mut());
    warm.run_until_committed(7, 1_000_000).expect("warm prefix completes");
    warm.snapshot()
}

/// One forked trial: restore the machine to the warm boundary, write
/// the (silent) target value, run to halt. This is the measured body of
/// `attack/fig5_amplified_trial_forked` — no construction, no
/// assembly, no warm-prefix replay.
#[must_use]
pub fn run_forked_trial(m: &mut Machine, ck: &Checkpoint) -> u64 {
    m.restore(ck);
    m.mem_mut().write_u64(FIG5_TARGET, 42).expect("target mapped");
    m.run(1_000_000).expect("forked trial completes").cycles
}

// ---------------------------------------------------------------------------
// Report format
// ---------------------------------------------------------------------------

/// Schema version stamped into every report this module writes.
pub const PERF_SCHEMA: u32 = 1;

/// One benchmark's summary: per-iteration times plus how much work one
/// iteration performs (e.g. [`STEPS_PER_ITER`] machine steps), so
/// per-unit cost is `median_ns / work_per_iter`.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfRecord {
    /// Benchmark id (`step/fig5_quiet`, `channel/prime_probe_round`, …).
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Iterations per sample after calibration.
    pub iters: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Work units (steps, rounds, trials) per iteration.
    pub work_per_iter: u64,
}

impl PerfRecord {
    /// Median cost of one work unit, in nanoseconds.
    #[must_use]
    pub fn unit_ns(&self) -> f64 {
        self.median_ns / self.work_per_iter.max(1) as f64
    }

    /// Fastest-sample cost of one work unit, in nanoseconds. On the
    /// shared single-core runners this suite targets, co-tenant
    /// interference is strictly *additive* — it can only slow a sample
    /// down, never speed it up — so the minimum over samples is the
    /// robust estimator of intrinsic cost (medians swing ±40% with
    /// machine load). Speedup reporting and the CI regression gate both
    /// use this.
    #[must_use]
    pub fn best_unit_ns(&self) -> f64 {
        self.min_ns / self.work_per_iter.max(1) as f64
    }
}

/// A perf report: what `BENCH_5.json` and `results/perf_baseline.json`
/// contain (the former adds a `pre_pr`/`speedup` section on top).
#[derive(Clone, Debug, PartialEq)]
pub struct PerfReport {
    /// Format version ([`PERF_SCHEMA`]).
    pub schema: u32,
    /// `"full"` or `"quick"`.
    pub mode: String,
    /// One entry per benchmark.
    pub benches: Vec<PerfRecord>,
}

impl PerfReport {
    /// Looks up a record by id.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<&PerfRecord> {
        self.benches.iter().find(|b| b.id == id)
    }

    /// Serializes the report (stable key order, one bench per line).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + 192 * self.benches.len());
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": {},\n", self.schema));
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str("  \"benches\": [\n");
        for (i, b) in self.benches.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"iters\": {}, \"samples\": {}, \"work_per_iter\": {}}}{}\n",
                b.id, b.median_ns, b.min_ns, b.max_ns, b.iters, b.samples, b.work_per_iter,
                if i + 1 == self.benches.len() { "" } else { "," },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a report previously written by [`PerfReport::to_json`]
    /// (or the extended `BENCH_5.json` form — unknown keys are
    /// ignored).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax or shape
    /// problem encountered.
    pub fn from_json(text: &str) -> Result<PerfReport, String> {
        let v = json::parse(text)?;
        let obj = v.as_obj().ok_or("top level is not an object")?;
        let schema = json::get_num(obj, "schema").ok_or("missing \"schema\"")? as u32;
        let mode = json::get_str(obj, "mode").ok_or("missing \"mode\"")?.to_string();
        let benches_v = json::get(obj, "benches")
            .and_then(json::Value::as_arr)
            .ok_or("missing \"benches\" array")?;
        let mut benches = Vec::with_capacity(benches_v.len());
        for (i, bv) in benches_v.iter().enumerate() {
            let b = bv.as_obj().ok_or_else(|| format!("bench #{i} is not an object"))?;
            let field = |k: &str| json::get_num(b, k).ok_or_else(|| format!("bench #{i}: missing \"{k}\""));
            benches.push(PerfRecord {
                id: json::get_str(b, "id")
                    .ok_or_else(|| format!("bench #{i}: missing \"id\""))?
                    .to_string(),
                median_ns: field("median_ns")?,
                min_ns: field("min_ns")?,
                max_ns: field("max_ns")?,
                iters: field("iters")? as u64,
                samples: field("samples")? as usize,
                work_per_iter: field("work_per_iter")? as u64,
            });
        }
        Ok(PerfReport { schema, mode, benches })
    }
}

/// Per-step costs measured at the last pre-optimization commit
/// (`29ebeea`, the PR 4 head), on the same workloads this harness
/// runs — the fastest medians observed across repeated runs, i.e. the
/// same noise-robust statistic [`PerfRecord::best_unit_ns`] reports
/// now. `BENCH_5.json` reports current-vs-these speedups; they are
/// frozen history, not a moving baseline (that is
/// `results/perf_baseline.json`).
pub const PRE_PR_STEP_NS: &[(&str, f64)] = &[
    ("step/fig5_quiet", 480.0),
    ("step/fig5_noisy", 500.0),
    ("step/duo", 1050.0),
];

/// Renders the extended `BENCH_5.json` document: the report plus the
/// pre-PR step costs and the speedup factors they imply.
#[must_use]
pub fn bench5_json(report: &PerfReport) -> String {
    let body = report.to_json();
    // Splice the extra sections in after the "mode" line.
    let mut extra = String::from("  \"pre_pr\": {\n");
    extra.push_str("    \"commit\": \"29ebeea\",\n");
    for (i, (id, ns)) in PRE_PR_STEP_NS.iter().enumerate() {
        extra.push_str(&format!(
            "    \"{id}\": {ns:.1}{}\n",
            if i + 1 == PRE_PR_STEP_NS.len() { "" } else { "," }
        ));
    }
    extra.push_str("  },\n  \"speedup\": {\n");
    let mut lines = Vec::new();
    for (id, pre_ns) in PRE_PR_STEP_NS {
        if let Some(rec) = report.get(id) {
            lines.push(format!("    \"{id}\": {:.2}", pre_ns / rec.best_unit_ns()));
        }
    }
    extra.push_str(&lines.join(",\n"));
    extra.push_str("\n  },\n");
    body.replacen("  \"benches\": [\n", &format!("{extra}  \"benches\": [\n"), 1)
}

/// Renders `BENCH_7.json`: the report plus the fleet-vs-serial
/// comparison the batch sweep engine is gated on — the per-trial
/// fastest-sample cost of `serial/e16_grid` (per-trial fresh
/// assemble plus `Machine::new`, the pre-fleet loop shape) against
/// `fleet/e16_grid` (shared program, pooled machines), and the speedup
/// factor between them. The document stays parseable by
/// [`PerfReport::from_json`].
#[must_use]
pub fn bench7_json(report: &PerfReport) -> String {
    let body = report.to_json();
    let mut extra = String::from("  \"fleet\": {\n");
    let unit = |id: &str| report.get(id).map(PerfRecord::best_unit_ns);
    match (unit("serial/e16_grid"), unit("fleet/e16_grid")) {
        (Some(serial), Some(fl)) => {
            extra.push_str(&format!("    \"serial_trial_ns\": {serial:.1},\n"));
            extra.push_str(&format!("    \"fleet_trial_ns\": {fl:.1},\n"));
            extra.push_str(&format!("    \"speedup\": {:.2}\n", serial / fl));
        }
        _ => extra.push_str("    \"speedup\": null\n"),
    }
    extra.push_str("  },\n");
    body.replacen("  \"benches\": [\n", &format!("{extra}  \"benches\": [\n"), 1)
}

/// Renders `BENCH_10.json`: the report plus the checkpoint-vs-replay
/// comparison the two-tier execution layer is gated on — the
/// fastest-sample cost of `attack/fig5_amplified_trial` (fresh
/// `Machine::new` + full warm-prefix replay per trial) against
/// `attack/fig5_amplified_trial_forked` (restore from a shared mid-run
/// [`Checkpoint`], write the trial value, run the suffix), and the
/// grid-shaped version of the same gap (`fleet/e16_grid` vs
/// `forked/e16_grid`). The document stays parseable by
/// [`PerfReport::from_json`].
#[must_use]
pub fn bench10_json(report: &PerfReport) -> String {
    let body = report.to_json();
    let unit = |id: &str| report.get(id).map(PerfRecord::best_unit_ns);
    let mut extra = String::from("  \"checkpoint\": {\n");
    match (
        unit("attack/fig5_amplified_trial"),
        unit("attack/fig5_amplified_trial_forked"),
    ) {
        (Some(replay), Some(forked)) => {
            extra.push_str(&format!("    \"replay_trial_ns\": {replay:.1},\n"));
            extra.push_str(&format!("    \"forked_trial_ns\": {forked:.1},\n"));
            extra.push_str(&format!("    \"speedup\": {:.2},\n", replay / forked));
        }
        _ => extra.push_str("    \"speedup\": null,\n"),
    }
    match (unit("fleet/e16_grid"), unit("forked/e16_grid")) {
        (Some(fl), Some(forked)) => {
            extra.push_str(&format!("    \"fleet_grid_trial_ns\": {fl:.1},\n"));
            extra.push_str(&format!("    \"forked_grid_trial_ns\": {forked:.1},\n"));
            extra.push_str(&format!("    \"grid_speedup\": {:.2}\n", fl / forked));
        }
        _ => extra.push_str("    \"grid_speedup\": null\n"),
    }
    extra.push_str("  },\n");
    body.replacen("  \"benches\": [\n", &format!("{extra}  \"benches\": [\n"), 1)
}

/// Compares `current` against `baseline` on every `step/*` benchmark:
/// returns one message per benchmark whose per-unit fastest-sample
/// cost ([`PerfRecord::best_unit_ns`]) regressed more than
/// `max_regress_pct` percent. Missing baseline entries are skipped
/// (new benchmarks are not regressions); an empty return means the
/// gate passes.
#[must_use]
pub fn step_regressions(
    current: &PerfReport,
    baseline: &PerfReport,
    max_regress_pct: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for cur in current.benches.iter().filter(|b| b.id.starts_with("step/")) {
        let Some(base) = baseline.get(&cur.id) else {
            continue;
        };
        let limit = base.best_unit_ns() * (1.0 + max_regress_pct / 100.0);
        if cur.best_unit_ns() > limit {
            failures.push(format!(
                "{}: {:.1} ns/step vs baseline {:.1} ns/step (+{:.1}% > {:.0}% allowed)",
                cur.id,
                cur.best_unit_ns(),
                base.best_unit_ns(),
                (cur.best_unit_ns() / base.best_unit_ns() - 1.0) * 100.0,
                max_regress_pct,
            ));
        }
    }
    failures
}

/// Validates a perf-baseline file for `runall --smoke`: `Ok(None)` if
/// the file does not exist (fresh results dir), `Ok(Some(report))` if
/// it parses, `Err` with a description otherwise.
///
/// # Errors
///
/// An unreadable or unparsable file (a torn write, hand-edit, or
/// format drift CI should catch).
pub fn check_baseline_file(path: &std::path::Path) -> Result<Option<PerfReport>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    PerfReport::from_json(&text)
        .map(Some)
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// Minimal JSON reader for the report formats above (the workspace is
/// offline; there is no serde). Supports objects, arrays, strings
/// (with `\"`/`\\`/`\n`-style escapes), numbers, booleans, and null.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `{...}` — insertion-ordered key/value pairs.
        Obj(Vec<(String, Value)>),
        /// `[...]`.
        Arr(Vec<Value>),
        /// `"..."`.
        Str(String),
        /// Any number (parsed as `f64`).
        Num(f64),
        /// `true` / `false`.
        Bool(bool),
        /// `null`.
        Null,
    }

    impl Value {
        pub fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(m) => Some(m),
                _ => None,
            }
        }
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
    }

    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
    pub fn get_num(obj: &[(String, Value)], key: &str) -> Option<f64> {
        match get(obj, key)? {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
    pub fn get_str<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a str> {
        match get(obj, key)? {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser { b: text.as_bytes(), i: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }

        fn peek(&mut self) -> Result<u8, String> {
            self.skip_ws();
            self.b.get(self.i).copied().ok_or_else(|| "unexpected end of input".into())
        }

        fn expect(&mut self, c: u8) -> Result<(), String> {
            if self.peek()? == c {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at offset {}", c as char, self.i))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek()? {
                b'{' => self.obj(),
                b'[' => self.arr(),
                b'"' => Ok(Value::Str(self.string()?)),
                b't' => self.lit("true", Value::Bool(true)),
                b'f' => self.lit("false", Value::Bool(false)),
                b'n' => self.lit("null", Value::Null),
                _ => self.num(),
            }
        }

        fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.b[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at offset {}", self.i))
            }
        }

        fn obj(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut m = Vec::new();
            if self.peek()? == b'}' {
                self.i += 1;
                return Ok(Value::Obj(m));
            }
            loop {
                let k = self.string()?;
                self.expect(b':')?;
                m.push((k, self.value()?));
                match self.peek()? {
                    b',' => self.i += 1,
                    b'}' => {
                        self.i += 1;
                        return Ok(Value::Obj(m));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
                }
            }
        }

        fn arr(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut a = Vec::new();
            if self.peek()? == b']' {
                self.i += 1;
                return Ok(Value::Arr(a));
            }
            loop {
                a.push(self.value()?);
                match self.peek()? {
                    b',' => self.i += 1,
                    b']' => {
                        self.i += 1;
                        return Ok(Value::Arr(a));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut s = String::new();
            loop {
                let c = *self
                    .b
                    .get(self.i)
                    .ok_or("unterminated string")?;
                self.i += 1;
                match c {
                    b'"' => return Ok(s),
                    b'\\' => {
                        let e = *self.b.get(self.i).ok_or("unterminated escape")?;
                        self.i += 1;
                        s.push(match e {
                            b'"' => '"',
                            b'\\' => '\\',
                            b'/' => '/',
                            b'n' => '\n',
                            b't' => '\t',
                            b'r' => '\r',
                            _ => return Err(format!("unsupported escape at offset {}", self.i)),
                        });
                    }
                    _ => s.push(c as char),
                }
            }
        }

        fn num(&mut self) -> Result<Value, String> {
            self.skip_ws();
            let start = self.i;
            while self.i < self.b.len()
                && matches!(self.b[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                self.i += 1;
            }
            std::str::from_utf8(&self.b[start..self.i])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at offset {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, median: f64, work: u64) -> PerfRecord {
        PerfRecord {
            id: id.to_string(),
            median_ns: median,
            min_ns: median * 0.9,
            max_ns: median * 1.2,
            iters: 64,
            samples: 10,
            work_per_iter: work,
        }
    }

    fn report(benches: Vec<PerfRecord>) -> PerfReport {
        PerfReport { schema: PERF_SCHEMA, mode: "full".into(), benches }
    }

    #[test]
    fn report_json_round_trips() {
        let r = report(vec![rec("step/fig5_quiet", 123_456.7, 1000), rec("channel/pp", 9.5e6, 1)]);
        let parsed = PerfReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.schema, r.schema);
        assert_eq!(parsed.mode, r.mode);
        assert_eq!(parsed.benches.len(), 2);
        assert_eq!(parsed.benches[0].id, "step/fig5_quiet");
        assert!((parsed.benches[0].median_ns - 123_456.7).abs() < 0.2);
        assert_eq!(parsed.benches[1].work_per_iter, 1);
    }

    #[test]
    fn bench5_json_adds_speedups_and_still_parses() {
        let r = report(vec![rec("step/fig5_quiet", 500.0 * 1000.0, 1000)]);
        let text = bench5_json(&r);
        assert!(text.contains("\"pre_pr\""));
        assert!(text.contains("\"speedup\""));
        // The extended form must stay readable by the same parser.
        let parsed = PerfReport::from_json(&text).unwrap();
        assert_eq!(parsed.benches.len(), 1);
    }

    #[test]
    fn bench7_json_reports_fleet_speedup_and_still_parses() {
        let r = report(vec![
            rec("serial/e16_grid", 200_000.0 * 40.0, 40),
            rec("fleet/e16_grid", 40_000.0 * 40.0, 40),
        ]);
        let text = bench7_json(&r);
        assert!(text.contains("\"fleet\""));
        assert!(text.contains("\"speedup\": 5.00"), "{text}");
        let parsed = PerfReport::from_json(&text).unwrap();
        assert_eq!(parsed.benches.len(), 2);
    }

    #[test]
    fn grid_paths_agree_trial_for_trial() {
        // The contract behind the BENCH_7 and BENCH_10 comparisons: all
        // three provisioning paths run the *same* work — identical
        // per-trial cycle counts — so the measured gaps are pure
        // provisioning overhead. A sub-grid spanning two intensities
        // (so the forked path exercises its cycle-0 noise overrides)
        // keeps this cheap enough for the unit suite.
        let jobs = &e16_grid_jobs()[6..14];
        let serial = run_grid_serial(jobs);
        assert_eq!(serial, run_grid_fleet(jobs));
        assert_eq!(serial, run_grid_forked(jobs));
    }

    #[test]
    fn forked_trial_matches_replay_cycles() {
        // The BENCH_10 benches must measure the same trial: forking
        // from the warm mid-run checkpoint and replaying from scratch
        // land on the same cycle count (the golden suite pins the full
        // stats; this pins the two bench bodies against each other).
        let cfg = fig5_quiet_config();
        let prog = e16_grid_program(&cfg);
        let mut replay = Machine::new(cfg);
        replay.load_program(&prog);
        grid_prep(&cfg, 42, &mut replay);
        let replay_cycles = replay.run(1_000_000).expect("replay trial completes").cycles;

        let ck = fig5_trial_checkpoint();
        assert!(ck.cycle() > 0, "the trial checkpoint must be mid-run");
        let mut m = Machine::from_checkpoint(&ck);
        // Two forked trials back to back: the second restores over a
        // dirty, already-halted machine, as the bench loop does.
        assert_eq!(run_forked_trial(&mut m, &ck), replay_cycles);
        assert_eq!(run_forked_trial(&mut m, &ck), replay_cycles);
    }

    #[test]
    fn bench10_json_reports_checkpoint_speedup_and_still_parses() {
        let r = report(vec![
            rec("attack/fig5_amplified_trial", 90_000.0, 1),
            rec("attack/fig5_amplified_trial_forked", 30_000.0, 1),
            rec("fleet/e16_grid", 50_000.0 * 40.0, 40),
            rec("forked/e16_grid", 25_000.0 * 40.0, 40),
        ]);
        let text = bench10_json(&r);
        assert!(text.contains("\"checkpoint\""));
        assert!(text.contains("\"speedup\": 3.00"), "{text}");
        assert!(text.contains("\"grid_speedup\": 2.00"), "{text}");
        let parsed = PerfReport::from_json(&text).unwrap();
        assert_eq!(parsed.benches.len(), 4);
    }

    #[test]
    fn gate_flags_only_regressed_step_benches() {
        let base = report(vec![rec("step/a", 1000.0, 1), rec("step/b", 1000.0, 1), rec("other/c", 1000.0, 1)]);
        let cur = report(vec![
        rec("step/a", 1100.0, 1),   // +10%: within the 20% gate
            rec("step/b", 1500.0, 1),   // +50%: regression
            rec("other/c", 9000.0, 1),  // not a step bench: ignored
            rec("step/new", 5000.0, 1), // no baseline: ignored
        ]);
        let fails = step_regressions(&cur, &base, 20.0);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].starts_with("step/b"));
    }

    #[test]
    fn malformed_baseline_is_an_error_and_missing_is_none() {
        let dir = std::env::temp_dir().join(format!("pandora_perf_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("nope.json");
        assert_eq!(check_baseline_file(&missing).unwrap(), None);
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"schema\": 1").unwrap();
        assert!(check_baseline_file(&bad).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn step_workload_survives_many_steps_without_halting() {
        let mut m = fig5_step_machine(fig5_quiet_config());
        warmup(&mut m, 3000);
        assert!(m.stats().committed > 0, "the loop must be retiring instructions");
        assert!(m.stats().silent_stores > 0, "the gadget store must be silent");
    }

    #[test]
    fn noisy_step_workload_fires_the_noise_hook() {
        let mut m = fig5_step_machine(fig5_noisy_config());
        warmup(&mut m, 3000);
        assert!(m.stats().noise_events > 0);
    }

    #[test]
    fn duo_step_workload_steps_both_cores() {
        let mut duo = duo_step_machine();
        for _ in 0..2000 {
            duo.step().expect("duo step");
        }
        assert!(duo.core_a().stats().committed > 0);
        assert!(duo.core_b().stats().committed > 0);
    }
}
