//! Thin wrapper over the `e9_replay_recovery` registry experiment — see
//! `pandora_bench::experiments::e9_replay_recovery` for the experiment body and
//! `runall` for the orchestrated suite.

use std::process::ExitCode;

fn main() -> ExitCode {
    pandora_bench::experiments::standalone("e9_replay_recovery")
}
