//! Regenerates the **§V-A3 replay analysis**: full key recovery through
//! the silent-store equality oracle.
//!
//! The paper bounds the attack at 8 × 65 536 = 524 288 experiments
//! (each 16-bit slice takes at most 2^16 guesses). Running the full
//! search in a cycle-accurate simulator is ~0.5 M simulated encryption
//! pairs; by default this binary demonstrates the pipeline with a
//! windowed search per slice (pass `--full-slice` to run one complete
//! 65 536-guess search and measure its cost).

use pandora_attacks::BsaesAttack;
use pandora_crypto::RoundKeys;

fn main() {
    let full_slice = std::env::args().any(|a| a == "--full-slice");
    let victim_key: [u8; 16] = std::array::from_fn(|i| (i * 29 + 3) as u8);
    let attacker_key: [u8; 16] = std::array::from_fn(|i| (i * 17 + 11) as u8);
    let victim_pt: [u8; 16] = std::array::from_fn(|i| (i * 5 + 1) as u8);

    pandora_bench::header("E9: silent-store replay key recovery (§V-A3)");
    println!(
        "budget: 8 slices x 65,536 guesses = 524,288 experiments max\n\
         (windowed demo below uses 33 guesses per slice around the truth)"
    );

    let probe = BsaesAttack::new(victim_key, attacker_key, victim_pt, 0);
    let atk = probe.clone();
    let recovered = atk.recover_key(
        |k| {
            let truth = BsaesAttack::new(victim_key, attacker_key, victim_pt, k)
                .true_slice_value();
            let lo = truth.wrapping_sub(16);
            (0..33).map(|d| lo.wrapping_add(d)).collect()
        },
        60,
    );
    println!("victim key:    {victim_key:02x?}");
    println!("recovered key: {recovered:02x?}");
    let ok = recovered == Some(victim_key);
    println!("key recovery:  {}", if ok { "SUCCESS" } else { "FAILED" });

    // Show the inversion arithmetic explicitly.
    pandora_bench::header("Key-schedule inversion (the paper's final step)");
    let rk = RoundKeys::expand(&victim_key);
    let k10 = rk.round(10);
    println!("round-10 key:  {k10:02x?}");
    println!(
        "inverted to:   {:02x?}",
        RoundKeys::from_round10(&k10).master_key()
    );

    if full_slice {
        pandora_bench::header("Full 65,536-guess search for slice 0");
        let truth = probe.true_slice_value();
        let got = probe.recover_slice(0..=u16::MAX, 60);
        println!("truth {truth}, recovered {got:?}");
    }
}
