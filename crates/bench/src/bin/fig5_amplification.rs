//! Thin wrapper over the `fig5_amplification` registry experiment — see
//! `pandora_bench::experiments::fig5_amplification` for the experiment body and
//! `runall` for the orchestrated suite.

use std::process::ExitCode;

fn main() -> ExitCode {
    pandora_bench::experiments::standalone("fig5_amplification")
}
