//! Thin wrapper over the `table2` registry experiment — see
//! `pandora_bench::experiments::table2` for the experiment body and
//! `runall` for the orchestrated suite.

use std::process::ExitCode;

fn main() -> ExitCode {
    pandora_bench::experiments::standalone("table2")
}
