//! Regenerates **Table II** — the classification of each optimization
//! class by its MLD input signature: stateless instruction-centric,
//! stateful instruction-centric (Uarch/Arch), or memory-centric.

use pandora_core::render_table2;

fn main() {
    pandora_bench::header("Table II: optimization classification by MLD signature");
    print!("{}", render_table2());
}
