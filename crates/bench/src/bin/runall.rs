//! **`runall`** — the resilient suite driver: runs every registered
//! experiment on a thread pool with per-experiment deadlines, panic
//! isolation, bounded retries, and checkpoint/resume.
//!
//! ```text
//! cargo run --release -p pandora-bench --bin runall -- --smoke --jobs 2
//! cargo run --release -p pandora-bench --bin runall -- --resume
//! ```
//!
//! Exit code 0 = every experiment `ok`; 1 = some experiments came back
//! `partial` or `degraded` (suppressed by `--allow-partial`, the CI
//! mode); 2 = infrastructure failure, a determinism mismatch on resume,
//! or a simulated-kill crash test taking the run down.

use std::process::ExitCode;

use pandora_bench::experiments::{registry, with_selftests, DEFAULT_SEED};
use pandora_channels::RetryPolicy;
use pandora_runner::{run_suite, ChaosPlan, Profile, SuiteOptions};

/// Decorrelates the chaos plan from the experiment seed, so `--chaos`
/// does not re-derive its fault schedule from the exact stream the
/// experiments consume.
const CHAOS_SEED_SALT: u64 = 0xc4a0_57e5_7000_0001;

const USAGE: &str = "\
usage: runall [options]

  --smoke              run every experiment's cheap profile
  --resume             resume from results/.runall.journal: skip completed
                       experiments, re-verify the first --reverify of them
  --resume-fallback    if --resume is refused (missing/corrupt journal or
                       manifest), start fresh instead of exiting 2
  --jobs N             worker threads (default 1)
  --fleet-threads N    machines each experiment's fleet grids step
                       concurrently (default: all cores; total thread
                       pressure is roughly jobs x fleet-threads)
  --only GLOB          run only experiments matching GLOB (e.g. 'fig*')
  --results-dir DIR    output directory (default results/)
  --seed HEX|DEC       suite seed recorded in the manifest (default 0)
  --retries N          total attempts per experiment (default 2)
  --deadline-secs N    override every experiment's deadline
  --reverify N         resumed experiments to re-run for determinism (default 1)
  --selftest           also register the injected panic/wedge selftests
  --chaos              inject the seeded storage-fault selftest plan (one of
                       each recoverable fault kind) and report what fired;
                       faults degrade the run -- combine with --allow-partial
  --breaker N          consecutive panic/deadline failures before an
                       experiment's circuit breaker opens (default 3, 0 = off)
  --max-restarts N     replacement workers after wedges (default 4)
  --allow-partial      exit 0 even if some experiments are partial/degraded
                       (CI mode)
  --list               list registered experiments and exit
  --help               this message

exit codes: 0 all ok; 1 partial/degraded rows (unless --allow-partial);
2 infrastructure failure / resume refusal / determinism mismatch
";

struct Cli {
    opts: SuiteOptions,
    selftest: bool,
    chaos: bool,
    allow_partial: bool,
    list: bool,
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut opts = SuiteOptions {
        seed: DEFAULT_SEED,
        progress: true,
        ..SuiteOptions::default()
    };
    let mut selftest = false;
    let mut chaos = false;
    let mut allow_partial = false;
    let mut list = false;
    let mut it = args.iter();
    let value = |it: &mut std::slice::Iter<String>, flag: &str| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => opts.profile = Profile::Smoke,
            "--resume" => opts.resume = true,
            "--resume-fallback" => opts.resume_fallback = true,
            "--selftest" => selftest = true,
            "--chaos" => chaos = true,
            "--allow-partial" => allow_partial = true,
            "--list" => list = true,
            "--jobs" => {
                let v = value(&mut it, "--jobs")?;
                opts.jobs = v.parse().map_err(|_| format!("bad --jobs value {v:?}"))?;
            }
            "--fleet-threads" => {
                let v = value(&mut it, "--fleet-threads")?;
                opts.fleet_threads = v
                    .parse()
                    .map_err(|_| format!("bad --fleet-threads value {v:?}"))?;
            }
            "--only" => opts.only = Some(value(&mut it, "--only")?),
            "--results-dir" => {
                opts.results_dir = value(&mut it, "--results-dir")?.into();
            }
            "--seed" => {
                let v = value(&mut it, "--seed")?;
                let parsed = v
                    .strip_prefix("0x")
                    .map_or_else(|| v.parse(), |hex| u64::from_str_radix(hex, 16));
                opts.seed = parsed.map_err(|_| format!("bad --seed value {v:?}"))?;
            }
            "--retries" => {
                let v = value(&mut it, "--retries")?;
                opts.retry = RetryPolicy {
                    max_attempts: v.parse().map_err(|_| format!("bad --retries value {v:?}"))?,
                    ..RetryPolicy::default()
                };
            }
            "--deadline-secs" => {
                let v = value(&mut it, "--deadline-secs")?;
                let secs: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --deadline-secs value {v:?}"))?;
                opts.deadline_override = Some(std::time::Duration::from_secs(secs));
            }
            "--reverify" => {
                let v = value(&mut it, "--reverify")?;
                opts.reverify = v
                    .parse()
                    .map_err(|_| format!("bad --reverify value {v:?}"))?;
            }
            "--breaker" => {
                let v = value(&mut it, "--breaker")?;
                opts.breaker_threshold =
                    v.parse().map_err(|_| format!("bad --breaker value {v:?}"))?;
            }
            "--max-restarts" => {
                let v = value(&mut it, "--max-restarts")?;
                opts.max_worker_restarts = v
                    .parse()
                    .map_err(|_| format!("bad --max-restarts value {v:?}"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    // The chaos plan derives from the suite seed (salted), so the whole
    // faulted run is reproducible from the one seed on the command line.
    if chaos {
        opts.chaos = Some(ChaosPlan::selftest(opts.seed ^ CHAOS_SEED_SALT));
    }
    Ok(Cli {
        opts,
        selftest,
        chaos,
        allow_partial,
        list,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Cli {
        opts,
        selftest,
        chaos,
        allow_partial,
        list,
    } = match parse(&args) {
        Ok(parsed) => parsed,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("runall: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let registry = if selftest {
        with_selftests(registry())
    } else {
        registry()
    };

    if list {
        for exp in registry.all() {
            println!("{:<28} {}", exp.name, exp.title);
        }
        return ExitCode::SUCCESS;
    }

    // The process-wide fleet default: experiments whose grids pass
    // threads = 0 resolve to this. `--fleet-threads 0` (the default)
    // keeps the fleet's own default of all cores.
    pandora_sim::fleet::set_default_threads(opts.fleet_threads);

    println!(
        "pandora runall: {} experiments, profile {}, {} job(s), {} fleet thread(s), seed {:#x}{}",
        registry.select(opts.only.as_deref()).len(),
        opts.profile.as_str(),
        opts.jobs.max(1),
        if opts.fleet_threads == 0 {
            pandora_sim::fleet::default_threads()
        } else {
            opts.fleet_threads
        },
        opts.seed,
        if opts.resume { ", resuming" } else { "" },
    );
    if chaos {
        if let Some(plan) = &opts.chaos {
            println!("chaos: {} storage fault(s) armed:", plan.len());
            for event in plan.events() {
                println!("  {} at {} occurrence #{}", event.kind.as_str(), event.site, event.nth);
            }
        }
    }

    // Smoke runs double as the CI health check for the perf baseline:
    // a malformed results/perf_baseline.json would make the bench
    // regression gate vacuous, so refuse it loudly; a missing one is
    // merely noted (fresh checkout, baseline not yet saved).
    if opts.profile == Profile::Smoke {
        let baseline = opts.results_dir.join("perf_baseline.json");
        match pandora_bench::perf::check_baseline_file(&baseline) {
            Ok(Some(report)) => println!(
                "perf baseline: {} ({} benches, schema {})",
                baseline.display(),
                report.benches.len(),
                report.schema,
            ),
            Ok(None) => println!(
                "perf baseline: {} not found; run \
                 `cargo bench -p pandora-bench --bench perf -- --save-baseline`",
                baseline.display(),
            ),
            Err(e) => {
                eprintln!("runall: perf baseline {} is malformed: {e}", baseline.display());
                return ExitCode::from(2);
            }
        }
    }

    let report = match run_suite(&registry, &opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("runall: {e}");
            return ExitCode::from(2);
        }
    };

    let (mut ok, mut partial, mut degraded, mut failed, mut resumed) =
        (0usize, 0usize, 0usize, 0usize, 0usize);
    for e in &report.experiments {
        if e.resumed {
            resumed += 1;
        }
        match e.status.keyword() {
            "ok" => ok += 1,
            "partial" => partial += 1,
            "degraded" => degraded += 1,
            _ => failed += 1,
        }
    }
    println!(
        "suite done: {ok} ok, {partial} partial, {degraded} degraded, {failed} failed \
         ({resumed} resumed from journal); summary: {}",
        opts.results_dir.join("summary.json").display()
    );
    for e in &report.experiments {
        if let Some(reason) = e.status.reason() {
            println!("  {} {}: {reason}", e.status.keyword(), e.name);
        }
    }
    let health = &report.health;
    if chaos {
        println!(
            "chaos report: {}/{} armed fault(s) fired and were survived \
             (kinds: {}); {} routed I/O op(s)",
            health.faults_survived,
            health.faults_injected,
            if health.fault_kinds.is_empty() {
                "none".to_string()
            } else {
                health.fault_kinds.join(", ")
            },
            health.io_ops,
        );
    }
    if health.worker_restarts > 0
        || health.workers_abandoned > 0
        || !health.breakers_open.is_empty()
        || health.journal_degraded
        || health.publish_failures > 0
    {
        println!(
            "health: {} worker restart(s), {} abandoned, breakers open: [{}], \
             {} publish failure(s){}",
            health.worker_restarts,
            health.workers_abandoned,
            health.breakers_open.join(", "),
            health.publish_failures,
            if health.journal_degraded {
                "; journal degraded (checkpointing was disabled)"
            } else {
                ""
            },
        );
    }

    if !report.none_failed() {
        ExitCode::from(2)
    } else if report.all_ok() || allow_partial {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
