//! Thin wrapper over the `e12_rfc` registry experiment — see
//! `pandora_bench::experiments::e12_rfc` for the experiment body and
//! `runall` for the orchestrated suite.

use std::process::ExitCode;

fn main() -> ExitCode {
    pandora_bench::experiments::standalone("e12_rfc")
}
