//! Thin wrapper over the `fig4_cases` registry experiment — see
//! `pandora_bench::experiments::fig4_cases` for the experiment body and
//! `runall` for the orchestrated suite.

use std::process::ExitCode;

fn main() -> ExitCode {
    pandora_bench::experiments::standalone("fig4_cases")
}
