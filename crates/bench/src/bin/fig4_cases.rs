//! Regenerates **Figure 4** — the four possible sequences of actions a
//! store takes under the read-port-stealing silent-store scheme — by
//! constructing a micro-program for each case and printing the
//! simulator's event timeline for the target store.
//!
//! * **A** — SS-load returns, values equal → silent dequeue,
//! * **B** — SS-load returns, values differ → performed normally,
//! * **C** — no free load port at store execute → never checked,
//! * **D** — SS-load returns after the store is ready to perform.

use pandora_isa::{Asm, Reg};
use pandora_sim::{Machine, OptConfig, SimConfig, TraceEvent};

fn run(build: impl FnOnce(&mut Asm) -> usize, setup: impl FnOnce(&mut Machine)) -> (usize, Machine) {
    let mut a = Asm::new();
    let store_pc = build(&mut a);
    a.fence();
    a.halt();
    let prog = a.assemble().expect("fig4 program assembles");
    let mut m = Machine::new(SimConfig::with_opts(OptConfig::with_silent_stores()));
    m.enable_trace();
    m.load_program(&prog);
    setup(&mut m);
    m.run(1_000_000).expect("fig4 program completes");
    (store_pc, m)
}

fn show(case: &str, description: &str, store_pc: usize, m: &Machine) {
    pandora_bench::header(&format!("Fig 4 case {case}: {description}"));
    for e in m.trace().store_timeline(store_pc) {
        println!("  {e:?}");
    }
}

fn main() {
    const TARGET: u64 = 0x1_0000;

    // Case A: warm line, equal value -> silent.
    let (pc, m) = run(
        |a| {
            a.ld(Reg::T0, Reg::ZERO, TARGET as i64); // warm the line
            a.fence();
            a.li(Reg::T0, 42);
            let pc = a.here();
            a.sd(Reg::T0, Reg::ZERO, TARGET as i64);
            pc
        },
        |m| m.mem_mut().write_u64(TARGET, 42).expect("in memory"),
    );
    show("A", "store value == loaded (silent store)", pc, &m);

    // Case B: warm line, different value -> performed.
    let (pc, m) = run(
        |a| {
            a.ld(Reg::T0, Reg::ZERO, TARGET as i64);
            a.fence();
            a.li(Reg::T0, 43);
            let pc = a.here();
            a.sd(Reg::T0, Reg::ZERO, TARGET as i64);
            pc
        },
        |m| m.mem_mut().write_u64(TARGET, 42).expect("in memory"),
    );
    show("B", "store value != loaded (non-silent store)", pc, &m);

    // Case C: saturate both load ports with a stream of ready demand
    // loads so no port is free when the store's address resolves.
    let (pc, m) = run(
        |a| {
            a.li(Reg::T0, 42);
            let pc = a.here();
            a.sd(Reg::T0, Reg::ZERO, TARGET as i64);
            for i in 0..24i64 {
                a.ld(Reg::T1, Reg::ZERO, 0x2_0000 + 64 * i);
            }
            pc
        },
        |m| m.mem_mut().write_u64(TARGET, 42).expect("in memory"),
    );
    show("C", "no free load port (never checked)", pc, &m);

    // Case D: cold line -> the SS-load takes a full miss and is still
    // outstanding when the committed store reaches the SQ head.
    let (pc, m) = run(
        |a| {
            a.li(Reg::T0, 42);
            let pc = a.here();
            a.sd(Reg::T0, Reg::ZERO, TARGET as i64);
            pc
        },
        |m| m.mem_mut().write_u64(TARGET, 42).expect("in memory"),
    );
    show("D", "SS-load returns late (non-silent store)", pc, &m);

    // Summary row like the paper's prose: which case ended silent.
    pandora_bench::header("Summary");
    println!("case A dequeues silently; B, C and D perform the store to the cache");
    let silent_events = m
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::StoreSilentDequeue { .. }))
        .count();
    println!("(case D machine recorded {silent_events} silent dequeues, as expected: 0)");
}
