//! Thin wrapper over the `e14_defenses` registry experiment — see
//! `pandora_bench::experiments::e14_defenses` for the experiment body and
//! `runall` for the orchestrated suite.

use std::process::ExitCode;

fn main() -> ExitCode {
    pandora_bench::experiments::standalone("e14_defenses")
}
