//! Regenerates the **§VI-A defense retrofits**, measured: each row is
//! a leak magnitude (cycles) before and after the mitigation.

use pandora_attacks::defense::{
    msb_retrofit_vs_packing, sn_keying_vs_reuse, targeted_clearing_vs_silent_stores,
};

fn main() {
    pandora_bench::header("E14: defense retrofits (§VI-A)");
    println!(
        "{:<46} {:>12} {:>12}",
        "mitigation", "leak before", "leak after"
    );
    let rows = [
        (
            "OR-1-into-MSB vs operand packing (§VI-A2)",
            msb_retrofit_vs_packing(),
        ),
        (
            "Sn register-id keying vs reuse (§VI-A3)",
            sn_keying_vs_reuse(),
        ),
        (
            "targeted clearing vs silent stores (§VI-A2)",
            targeted_clearing_vs_silent_stores(),
        ),
    ];
    for (name, o) in rows {
        println!(
            "{:<46} {:>12} {:>12}",
            name, o.unmitigated_delta, o.mitigated_delta
        );
    }
    println!(
        "\nPaper claim: retrofits can restore security — the open question is\n\
         doing so while keeping the optimizations' performance benefit."
    );
}
