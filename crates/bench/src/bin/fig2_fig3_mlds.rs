//! Thin wrapper over the `fig2_fig3_mlds` registry experiment — see
//! `pandora_bench::experiments::fig2_fig3_mlds` for the experiment body and
//! `runall` for the orchestrated suite.

use std::process::ExitCode;

fn main() -> ExitCode {
    pandora_bench::experiments::standalone("fig2_fig3_mlds")
}
