//! Regenerates the **§IV-C stateful-optimization equality oracles**:
//! computation reuse and value prediction, including the §IV-C4 replay
//! attack recovering a byte in ≤ 2^8 experiments.

use pandora_attacks::stateful::{
    recover_byte_by_replay, reuse_equality_cycles, vp_equality_cycles,
};
use pandora_sim::ReuseKey;

fn main() {
    pandora_bench::header("E11a: computation reuse (Sv) equality oracle");
    let secret = 0xCAFEu64;
    println!("{:<12} {:>10}", "guess", "cycles");
    for g in [0xCAFEu64, 0xCAFF, 0xBEEF, 0x0000] {
        let marker = if g == secret { "  <- equal (hit)" } else { "" };
        println!(
            "{:<12} {:>10}{marker}",
            format!("{g:#x}"),
            reuse_equality_cycles(secret, g, ReuseKey::Values)
        );
    }

    pandora_bench::header("E11b: value prediction equality oracle");
    let secret = 0x1111u64;
    for g in [0x1111u64, 0x1112, 0x2222] {
        let marker = if g == secret {
            "  <- equal (no squashes)"
        } else {
            ""
        };
        println!(
            "{:<12} {:>10}{marker}",
            format!("{g:#x}"),
            vp_equality_cycles(secret, g)
        );
    }

    pandora_bench::header("E11c: §IV-C4 replay — byte recovery in 2^8 experiments");
    let secret = 0x5Au64;
    let got = recover_byte_by_replay(|g| reuse_equality_cycles(secret, g, ReuseKey::Values));
    println!("secret byte {secret:#04x}, recovered by 256-guess replay: {got:02x?}");
    println!(
        "\nPaper claim: because these optimizations check for equality, the\n\
         attacker can learn each value exactly via replays — 2^8 tries for\n\
         a byte, 2^32 for a word."
    );
}
