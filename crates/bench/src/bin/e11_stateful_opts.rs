//! Thin wrapper over the `e11_stateful_opts` registry experiment — see
//! `pandora_bench::experiments::e11_stateful_opts` for the experiment body and
//! `runall` for the orchestrated suite.

use std::process::ExitCode;

fn main() -> ExitCode {
    pandora_bench::experiments::standalone("e11_stateful_opts")
}
