//! Thin wrapper over the `e17_scan_service` registry experiment — see
//! `pandora_bench::experiments::e17_scan_service` for the experiment
//! body and `runall` for the orchestrated suite.

use std::process::ExitCode;

fn main() -> ExitCode {
    pandora_bench::experiments::standalone("e17_scan_service")
}
