//! Regenerates **Figure 6** — the histogram of BSAES runtimes when the
//! amplification gadget is applied to one of the eight stores that
//! overwrite AES state, for a correct vs incorrect guess of the
//! victim's 16-bit slice value.
//!
//! Cache-state noise is injected per trial (pseudo-random line
//! preconditioning), as the paper's experiment environment does
//! naturally; the two populations must remain cleanly separated
//! (>100 cycles between modes).
//!
//! The driver first demonstrates robustness: a fault plan wedges the
//! pipeline on the first measurement attempt, and the [`RetryPolicy`]
//! recovers on a clean re-run. Simulator failures surface as structured
//! errors and the driver reports whatever it measured before exiting
//! nonzero instead of panicking.
//!
//! `cargo run --release -p pandora-bench --bin fig6_bsaes_hist`

use pandora_attacks::BsaesAttack;
use pandora_channels::{welch_t, Histogram, RetryPolicy, Summary};
use pandora_sim::{FaultKind, FaultPlan, SimError};
use std::process::ExitCode;

const TRIALS: usize = 40;
const BUCKET: u64 = 20;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig6_bsaes_hist: aborting with partial results: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let victim_key: [u8; 16] = std::array::from_fn(|i| (i * 13 + 7) as u8);
    let attacker_key: [u8; 16] = std::array::from_fn(|i| (i * 31 + 5) as u8);
    let victim_pt: [u8; 16] = std::array::from_fn(|i| (i * 3) as u8);
    let mut atk = BsaesAttack::new(victim_key, attacker_key, victim_pt, 0);
    let truth = atk.true_slice_value();

    // Robustness check: a dropped completion wedges the pipeline on the
    // first attempt at every guess; the watchdog surfaces it as a
    // structured deadlock and the retry policy lands the attack on a
    // clean re-run.
    pandora_bench::header("Robustness: recovering the slice through an injected wedge");
    atk.set_fault_plan(Some(FaultPlan::single(200, FaultKind::DroppedCompletion)));
    let policy = RetryPolicy::default();
    let window = (truth.wrapping_sub(3)..=truth.wrapping_add(2)).collect::<Vec<u16>>();
    let recovered = atk.recover_slice_with_retry(window, 60, &policy)?;
    println!(
        "recovered slice {recovered:04x?} (truth {truth:#06x}) despite a \
         DroppedCompletion fault on every first attempt"
    );
    atk.set_fault_plan(None);
    if recovered != Some(truth) {
        return Err(format!(
            "retrying driver failed to land the attack: got {recovered:?}, want {truth:#06x}"
        )
        .into());
    }

    let measure = |guess: u16| -> Result<Vec<u64>, SimError> {
        (0..TRIALS)
            .map(|t| {
                atk.try_measure_guess(guess, Some(t as u64 * 7919))
                    .map(|o| o.cycles)
            })
            .collect()
    };
    let correct = measure(truth)?;
    let incorrect = measure(truth ^ 0x0F0F)?;

    pandora_bench::header("Fig 6: BSAES runtimes, amplified store silent (correct guess) vs not");
    println!("GuessType = Correct   ({TRIALS} trials)");
    for (b, c, p) in Histogram::new(&correct, BUCKET).rows() {
        if c > 0 {
            println!("{}", pandora_bench::histogram_row(b, c, p, 50));
        }
    }
    println!("GuessType = Incorrect ({TRIALS} trials)");
    for (b, c, p) in Histogram::new(&incorrect, BUCKET).rows() {
        if c > 0 {
            println!("{}", pandora_bench::histogram_row(b, c, p, 50));
        }
    }

    let (sc, si) = (Summary::of(&correct), Summary::of(&incorrect));
    pandora_bench::header("Separation");
    println!("correct:   mean {:.1}  std {:.1}", sc.mean, sc.std());
    println!("incorrect: mean {:.1}  std {:.1}", si.mean, si.std());
    println!(
        "mode gap: {} cycles   Welch t = {:.1}",
        (si.mean - sc.mean).round(),
        welch_t(&incorrect, &correct)
    );
    println!(
        "\nPaper claim: a single dynamic silent store creates a large,\n\
         easily distinguishable (>100 cycle) difference between the two\n\
         histograms."
    );
    Ok(())
}
