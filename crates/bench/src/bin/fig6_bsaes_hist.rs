//! Thin wrapper over the `fig6_bsaes_hist` registry experiment — see
//! `pandora_bench::experiments::fig6_bsaes_hist` for the experiment body and
//! `runall` for the orchestrated suite.

use std::process::ExitCode;

fn main() -> ExitCode {
    pandora_bench::experiments::standalone("fig6_bsaes_hist")
}
