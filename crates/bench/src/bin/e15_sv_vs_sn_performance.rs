//! Thin wrapper over the `e15_sv_vs_sn_performance` registry experiment — see
//! `pandora_bench::experiments::e15_sv_vs_sn_performance` for the experiment body and
//! `runall` for the orchestrated suite.

use std::process::ExitCode;

fn main() -> ExitCode {
    pandora_bench::experiments::standalone("e15_sv_vs_sn_performance")
}
