//! Regenerates **Figure 1 / Figure 7 / §V-B** — the universal read
//! gadget: a verified eBPF-style sandbox program steers the 3-level
//! indirect-memory prefetcher to read attacker-chosen bytes outside the
//! sandbox and transmit them over a cache covert channel.
//!
//! Also reports the §IV-D4 comparison: the 2-level IMP does *not* form
//! a URG (its probe results are secret-independent).
//!
//! The byte-leak step runs under a [`RetryPolicy`] with an injected
//! fault wedging the first attempt, demonstrating the hardened driver.
//! Simulator failures surface as structured errors and the driver
//! reports partial results with a nonzero exit instead of panicking.
//!
//! `cargo run --release -p pandora-bench --bin fig7_urg`

use pandora_attacks::UrgAttack;
use pandora_channels::RetryPolicy;
use pandora_sandbox::verify;
use pandora_sim::{FaultKind, FaultPlan};
use std::process::ExitCode;

const SECRET_ADDR: u64 = 0x20_0000;
const SECRET: &[u8] = b"PANDORA!";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig7_urg: aborting with partial results: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    pandora_bench::header("Fig 7a: the attacker program passes the verifier");
    let mut atk3 = {
        let mut a = UrgAttack::new(3);
        for (i, &b) in SECRET.iter().enumerate() {
            a.plant_secret(SECRET_ADDR + i as u64, b);
        }
        a
    };
    println!(
        "verifier: {:?} (null-checked X[Y[Z[i]]] loop + timed probe)",
        verify(atk3.program()).map(|_| "ACCEPTED")
    );
    let (lo, hi) = atk3.layout().region();
    println!("sandbox region: [{lo:#x}, {hi:#x}); secret at {SECRET_ADDR:#x} (outside)");

    pandora_bench::header("3-level IMP: leaking one byte");
    let (run, machine) = atk3.try_run(SECRET_ADDR, 1)?;
    let hot: Vec<(usize, u64)> = run
        .timings
        .iter()
        .enumerate()
        .filter(|&(_, &t)| t < 60)
        .map(|(i, &t)| (i, t))
        .collect();
    println!("hot X lines (line index, probe cycles): {hot:?}");
    println!("training lines excluded: 1, 2, 3");
    println!("candidates: {:?}  (planted secret byte: {:#x})", run.candidates, SECRET[0]);
    println!(
        "prefetcher dereferenced the private address: {}",
        UrgAttack::deref_addresses(&machine).contains(&SECRET_ADDR)
    );

    pandora_bench::header("Robustness: leaking through an injected wedge");
    atk3.set_fault_plan(Some(FaultPlan::single(500, FaultKind::DroppedCompletion)));
    let policy = RetryPolicy::default();
    let leaked = atk3.leak_byte_with_retry(SECRET_ADDR, &policy)?;
    println!(
        "leaked {leaked:02x?} (expected {:#x}) despite a DroppedCompletion \
         fault on the first attempt",
        SECRET[0]
    );
    atk3.set_fault_plan(None);
    if leaked != Some(SECRET[0]) {
        return Err(format!(
            "retrying driver failed to land the attack: got {leaked:?}, want {:#x}",
            SECRET[0]
        )
        .into());
    }

    pandora_bench::header("Universal read gadget: dumping a secret string");
    let dumped = atk3.dump(SECRET_ADDR, SECRET.len());
    let recovered: String = dumped
        .iter()
        .map(|b| b.map_or('?', |v| v as char))
        .collect();
    println!("planted:   {:?}", String::from_utf8_lossy(SECRET));
    println!("recovered: {recovered:?}");

    pandora_bench::header("§V-B3: prefetch buffers aggravate but do not mitigate");
    let mut buffered = UrgAttack::with_fill(3, pandora_sim::PrefetchFill::L2Only);
    buffered.plant_secret(SECRET_ADDR, SECRET[0]);
    println!(
        "L2-only fills (prefetch-buffer model): leaked {:?} (expected {:#x})",
        buffered.leak_byte(SECRET_ADDR),
        SECRET[0]
    );

    pandora_bench::header("§IV-D4: the 2-level IMP is not a URG");
    let run2a = {
        let mut a = UrgAttack::new(2);
        a.plant_secret(SECRET_ADDR, 0x11);
        a.try_run(SECRET_ADDR, 1)?.0
    };
    let run2b = {
        let mut a = UrgAttack::new(2);
        a.plant_secret(SECRET_ADDR, 0xEE);
        a.try_run(SECRET_ADDR, 1)?.0
    };
    println!(
        "2-level candidates for secret 0x11: {:?}; for 0xEE: {:?}  (identical: {})",
        run2a.candidates,
        run2b.candidates,
        run2a.candidates == run2b.candidates
    );
    pandora_bench::header("§IV-D4: the 2-level leak window grows with Δ");
    println!(
        "{:<8} {:>18} {:>26}",
        "Δ", "max deref addr", "elements past Z's end (b)"
    );
    for delta in [1u64, 4, 16] {
        let mut a = UrgAttack::with_fill_and_distance(
            2,
            pandora_sim::PrefetchFill::AllLevels,
            delta,
        );
        a.plant_secret(SECRET_ADDR, 0x33);
        let (_, m) = a.try_run(SECRET_ADDR, 1)?;
        let max_deref = UrgAttack::deref_addresses(&m).into_iter().max().unwrap_or(0);
        let z_end = a.layout().map_base(0) + 16 * 8; // Z: 16 x u64
        let past = (max_deref as i64 - z_end as i64) / 8;
        println!("{:<8} {:>18} {:>26}", delta, format!("{max_deref:#x}"), past);
    }
    println!(
        "the prefetcher's reach past the stream array stays within Δ
         elements — the paper's [b, b+Δ) window."
    );

    println!(
        "\nPaper claim: the 3-level IMP forms a universal read gadget in the\n\
         sandbox setting; the 2-level IMP leaks only a Δ-element window\n\
         past the stream array."
    );
    Ok(())
}
