//! Thin wrapper over the `fig7_urg` registry experiment — see
//! `pandora_bench::experiments::fig7_urg` for the experiment body and
//! `runall` for the orchestrated suite.

use std::process::ExitCode;

fn main() -> ExitCode {
    pandora_bench::experiments::standalone("fig7_urg")
}
