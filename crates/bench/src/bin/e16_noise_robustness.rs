//! Thin wrapper over the `e16_noise_robustness` registry experiment — see
//! `pandora_bench::experiments::e16_noise_robustness` for the experiment body
//! and `runall` for the orchestrated suite.

use std::process::ExitCode;

fn main() -> ExitCode {
    pandora_bench::experiments::standalone("e16_noise_robustness")
}
