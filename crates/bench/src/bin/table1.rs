//! Thin wrapper over the `table1` registry experiment — see
//! `pandora_bench::experiments::table1` for the experiment body and
//! `runall` for the orchestrated suite.

use std::process::ExitCode;

fn main() -> ExitCode {
    pandora_bench::experiments::standalone("table1")
}
