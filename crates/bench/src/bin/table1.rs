//! Regenerates **Table I** — the leakage landscape: which program data
//! each optimization class endangers relative to the Baseline machine.
//!
//! `S` = safe, `U` = newly unsafe, `U'` = unsafe through a new function
//! of the data, `S‡` = safe absent a speculative-execution gadget,
//! `-` = no change. Compare against the paper's Table I (the generated
//! matrix is asserted equal to the paper's in `pandora-core`'s tests).

use pandora_core::render_table1;

fn main() {
    pandora_bench::header("Table I: leakage landscape (generated from MLD declarations)");
    print!("{}", render_table1());
    println!();
    println!(
        "Meta takeaway (§III): over the union of all seven optimization\n\
         classes, no instruction operand/result or data at rest is safe."
    );
}
