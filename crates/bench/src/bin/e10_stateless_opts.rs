//! Thin wrapper over the `e10_stateless_opts` registry experiment — see
//! `pandora_bench::experiments::e10_stateless_opts` for the experiment body and
//! `runall` for the orchestrated suite.

use std::process::ExitCode;

fn main() -> ExitCode {
    pandora_bench::experiments::standalone("e10_stateless_opts")
}
