//! Criterion benches: cost of the simulator and of each attack
//! primitive. These complement the per-figure binaries (which report
//! the *paper's* numbers); here we measure the *harness's* throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pandora_attacks::stateful::reuse_equality_cycles;
use pandora_attacks::stateless::zero_skip_mul_cycles;
use pandora_attacks::BsaesAttack;
use pandora_channels::CovertChannel;
use pandora_crypto::codegen::{emit_encrypt, BsaesLayout};
use pandora_crypto::{aes_ref, RoundKeys};
use pandora_isa::{Asm, Reg};
use pandora_sim::{Machine, ReuseKey, SimConfig};

/// Simulator throughput on a tight arithmetic loop.
fn sim_loop(c: &mut Criterion) {
    let mut a = Asm::new();
    a.li(Reg::T0, 10_000);
    a.label("l");
    a.addi(Reg::T1, Reg::T1, 3);
    a.xor(Reg::T2, Reg::T2, Reg::T1);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "l");
    a.halt();
    let prog = a.assemble().unwrap();
    c.bench_function("sim/40k-instruction loop", |b| {
        b.iter(|| {
            let mut m = Machine::new(SimConfig::default());
            m.load_program(&prog);
            black_box(m.run(10_000_000).unwrap());
        });
    });
}

/// One full BSAES encryption on the simulator.
fn bsaes_encrypt(c: &mut Criterion) {
    let lay = BsaesLayout::at(0x1_0000);
    let mut a = Asm::new();
    emit_encrypt(&mut a, &lay, |_, _, _| {});
    a.halt();
    let prog = a.assemble().unwrap();
    let rk = RoundKeys::expand(&[7u8; 16]);
    let rk_bytes = BsaesLayout::round_key_bytes(&rk);
    c.bench_function("sim/bsaes encrypt (one block)", |b| {
        b.iter(|| {
            let mut m = Machine::new(SimConfig::default());
            m.load_program(&prog);
            m.mem_mut().write_bytes(lay.rk, &rk_bytes).unwrap();
            m.mem_mut().write_bytes(lay.pt, &[0x5a; 16]).unwrap();
            black_box(m.run(5_000_000).unwrap());
        });
    });
}

/// The reference (host) AES for scale.
fn aes_reference(c: &mut Criterion) {
    let rk = RoundKeys::expand(&[7u8; 16]);
    c.bench_function("host/aes_ref encrypt", |b| {
        b.iter(|| black_box(aes_ref::encrypt(&rk, black_box(&[0x5a; 16]))));
    });
}

/// One amplified silent-store experiment (the Fig 6 trial unit).
fn amplified_trial(c: &mut Criterion) {
    let victim_key: [u8; 16] = std::array::from_fn(|i| i as u8);
    let attacker_key: [u8; 16] = std::array::from_fn(|i| (i + 3) as u8);
    let atk = BsaesAttack::new(victim_key, attacker_key, [0u8; 16], 0);
    let truth = atk.true_slice_value();
    c.bench_function("attack/bsaes amplified trial", |b| {
        b.iter(|| black_box(atk.measure_guess(black_box(truth), None)));
    });
}

/// One covert-channel round (send a symbol, probe 64 lines).
fn covert_round(c: &mut Criterion) {
    let ch = CovertChannel {
        base: 0x4_0000,
        symbols: 64,
        stride: 64,
        result_base: 0x800,
    };
    c.bench_function("channel/covert round (64 symbols)", |b| {
        b.iter(|| black_box(ch.round_trip(SimConfig::default(), black_box(42))));
    });
}

/// One equality-oracle query (reuse, Sv).
fn oracle_query(c: &mut Criterion) {
    c.bench_function("attack/reuse oracle query", |b| {
        b.iter(|| {
            black_box(reuse_equality_cycles(
                black_box(0xCAFE),
                black_box(0xBEEF),
                ReuseKey::Values,
            ))
        });
    });
    c.bench_function("attack/zero-skip oracle query", |b| {
        b.iter(|| black_box(zero_skip_mul_cycles(black_box(0), 5, true)));
    });
}

/// One full URG leak (two training runs + probes).
fn urg_leak(c: &mut Criterion) {
    let mut atk = pandora_attacks::UrgAttack::new(3);
    atk.plant_secret(0x20_0000, 0x5a);
    c.bench_function("attack/urg leak_byte", |b| {
        b.iter(|| black_box(atk.leak_byte(black_box(0x20_0000))));
    });
}

/// One byte-store replay probe (the §IV-C4 chunked experiment unit).
fn replay_probe(c: &mut Criterion) {
    c.bench_function("attack/byte-store replay probe", |b| {
        b.iter(|| {
            black_box(pandora_attacks::replay::byte_store_probe(
                black_box(0xDEAD_BEEF),
                0,
                black_box(0xEF),
            ))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = sim_loop, bsaes_encrypt, aes_reference, amplified_trial, covert_round, oracle_query, urg_leak, replay_probe
}
criterion_main!(benches);
