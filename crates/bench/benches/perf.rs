//! The perf-tracking bench binary (`cargo bench -p pandora-bench
//! --bench perf`). Measures the hot paths every experiment is built
//! from and persists machine-readable results:
//!
//! * `BENCH_5.json` at the repo root (always rewritten),
//! * `BENCH_7.json` at the repo root — the fleet-vs-serial sweep
//!   provisioning comparison (always rewritten),
//! * `results/perf_baseline.json` when `--save-baseline` is passed.
//!
//! Flags (after `--`):
//!
//! * `--quick`        smoke mode: fewer/shorter samples (CI).
//! * `--save-baseline` update `results/perf_baseline.json`.
//! * `--check`        exit nonzero if any `step/*` fastest-sample cost
//!   regressed more than 20% against the committed baseline.

use std::path::{Path, PathBuf};

use criterion::{black_box, Criterion};
use std::sync::Arc;

use pandora_bench::perf::{
    self, bench10_json, bench5_json, bench7_json, duo_step_machine, e16_grid_jobs,
    fig5_noisy_config, fig5_quiet_config, fig5_step_machine, fig5_step_program,
    fig5_trial_checkpoint, run_forked_trial, run_grid_fleet, run_grid_forked, run_grid_serial,
    step_regressions, warmup, PerfRecord, PerfReport, FIG5_DELAY, FIG5_TARGET, NOISY_WARMUP_STEPS,
    QUIET_WARMUP_STEPS, STEPS_PER_ITER,
};
use pandora_attacks::{AmplifyGadget, FlushKind};
use pandora_channels::prime_probe::probe_calibration_round;
use pandora_isa::{Asm, Reg};
use pandora_runner::output::atomic_write;
use pandora_sim::{FleetSpec, Machine};

/// Per-step `step/*` regression tolerance for `--check`, in percent.
const MAX_STEP_REGRESS_PCT: f64 = 20.0;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root exists")
}

fn bench_step_quiet(c: &mut Criterion) {
    let mut m = fig5_step_machine(fig5_quiet_config());
    warmup(&mut m, QUIET_WARMUP_STEPS);
    c.bench_function("step/fig5_quiet", |b| {
        b.iter(|| {
            for _ in 0..STEPS_PER_ITER {
                m.step().expect("quiet step");
            }
            black_box(m.stats().cycles)
        });
    });
}

fn bench_step_noisy(c: &mut Criterion) {
    let mut m = fig5_step_machine(fig5_noisy_config());
    warmup(&mut m, NOISY_WARMUP_STEPS);
    c.bench_function("step/fig5_noisy", |b| {
        b.iter(|| {
            for _ in 0..STEPS_PER_ITER {
                m.step().expect("noisy step");
            }
            black_box(m.stats().cycles)
        });
    });
}

fn bench_step_duo(c: &mut Criterion) {
    let mut duo = duo_step_machine();
    for _ in 0..QUIET_WARMUP_STEPS {
        duo.step().expect("duo warmup step");
    }
    // One iter unit = one DuoMachine step = one step of EACH core.
    c.bench_function("step/duo", |b| {
        b.iter(|| {
            for _ in 0..STEPS_PER_ITER {
                duo.step().expect("duo step");
            }
            black_box(duo.core_a().stats().cycles)
        });
    });
}

fn bench_prime_probe(c: &mut Criterion) {
    let cfg = fig5_quiet_config();
    c.bench_function("channel/prime_probe_round", |b| {
        b.iter(|| black_box(probe_calibration_round(&cfg, 8, None).expect("calibration round")));
    });
}

fn bench_fig5_amplification(c: &mut Criterion) {
    // One amplified silent-store trial, exactly the fig5 experiment's
    // unit of work (set-contention variant, silent case).
    let cfg = fig5_quiet_config();
    let gadget = AmplifyGadget::new(&cfg, FIG5_TARGET, FIG5_DELAY, FlushKind::Contention);
    let mut a = Asm::new();
    a.ld(Reg::T0, Reg::ZERO, FIG5_TARGET as i64);
    for i in 1..6i64 {
        a.ld(Reg::T0, Reg::ZERO, (FIG5_TARGET + 0x1000) as i64 + 64 * i);
    }
    a.fence();
    a.li(Reg::T0, 42);
    gadget.emit(&mut a);
    a.sd(Reg::T0, Reg::ZERO, FIG5_TARGET as i64);
    for i in 1..6i64 {
        a.sd(Reg::T0, Reg::ZERO, (FIG5_TARGET + 0x1000) as i64 + 64 * i);
    }
    a.fence();
    a.halt();
    let prog = a.assemble().expect("fig5 trial assembles");
    c.bench_function("attack/fig5_amplified_trial", |b| {
        b.iter(|| {
            let mut m = Machine::new(cfg);
            m.load_program(&prog);
            m.mem_mut().write_u64(FIG5_TARGET, 42).expect("target mapped");
            gadget.setup_memory(m.mem_mut());
            gadget.setup_memory_flush_variant(m.mem_mut());
            black_box(m.run(1_000_000).expect("fig5 trial completes").cycles)
        });
    });
}

fn bench_fig5_forked(c: &mut Criterion) {
    // The same amplified trial as attack/fig5_amplified_trial, but
    // provisioned the two-tier way: the warm prefix (program load,
    // gadget memory image, six warm loads + fence) is captured once in
    // a mid-run checkpoint; each iteration restores it into a reused
    // machine, writes the trial's target value, and runs only the
    // measured suffix. The golden suite pins this fork byte-identical
    // to the straight run, so the two benches time the same trial.
    let ck = fig5_trial_checkpoint();
    let mut m = Machine::from_checkpoint(&ck);
    c.bench_function("attack/fig5_amplified_trial_forked", |b| {
        b.iter(|| black_box(run_forked_trial(&mut m, &ck)));
    });
}

/// Members stepped by the `fleet/step_1k` lockstep bench.
const FLEET_STEP_MEMBERS: u64 = 2;

fn bench_fleet_step(c: &mut Criterion) {
    // Lockstep batch stepping through the fleet's single-thread inline
    // dispatch (what --fleet-threads 1 and nested-parallelism callers
    // get): one iter advances each of 2 quiet fig5 members by
    // STEPS_PER_ITER cycles, so per-step cost is directly comparable
    // to step/fig5_quiet — the delta is the fleet's dispatch overhead.
    let program = Arc::new(fig5_step_program());
    let mut fleet = FleetSpec::seed_grid(fig5_quiet_config(), &program, [0, 1])
        .with_threads(1)
        .build();
    fleet.step_batch(QUIET_WARMUP_STEPS);
    c.bench_function("fleet/step_1k", |b| {
        b.iter(|| {
            fleet.step_batch(STEPS_PER_ITER);
            black_box(fleet.merged_stats().cycles)
        });
    });
    assert_eq!(fleet.running(), 2, "step workloads must never halt");
}

fn bench_e16_grid(c: &mut Criterion) {
    // The tentpole comparison behind BENCH_7.json: the same 40-trial
    // E16-shaped sweep (8 amplified silent-store trials at each of 5
    // noise intensities), provisioned the pre-fleet way (per-trial
    // fresh assemble + Machine::new) vs the fleet way (shared Arc'd
    // program, machines recycled via reset_to). Identical per-trial
    // work — the unit-cost gap is pure provisioning overhead.
    let jobs = e16_grid_jobs();
    c.bench_function("serial/e16_grid", |b| {
        b.iter(|| black_box(run_grid_serial(&jobs)));
    });
    c.bench_function("fleet/e16_grid", |b| {
        b.iter(|| black_box(run_grid_fleet(&jobs)));
    });
    // The BENCH_10 grid leg: same sweep again, forked from a shared
    // cycle-0 checkpoint with per-job noise overrides.
    c.bench_function("forked/e16_grid", |b| {
        b.iter(|| black_box(run_grid_forked(&jobs)));
    });
}

fn work_per_iter(id: &str) -> u64 {
    if id.starts_with("step/") {
        STEPS_PER_ITER
    } else if id == "fleet/step_1k" {
        FLEET_STEP_MEMBERS * STEPS_PER_ITER
    } else if id.ends_with("/e16_grid") {
        e16_grid_jobs().len() as u64
    } else {
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| args.iter().any(|a| a == f);
    let quick = has("--quick");
    let save_baseline = has("--save-baseline");
    let check = has("--check");

    // Full mode takes many *short* samples rather than a few long
    // ones: on a shared runner, a 10 ms window averages co-tenant
    // bursts into every sample, while 2 ms windows let the fastest
    // sample (the statistic everything reports — see
    // `PerfRecord::best_unit_ns`) land between bursts.
    let mut c = if quick {
        Criterion::default().sample_size(5).measurement_millis(2)
    } else {
        Criterion::default().sample_size(80).measurement_millis(2)
    };

    bench_step_quiet(&mut c);
    bench_step_noisy(&mut c);
    bench_step_duo(&mut c);
    bench_prime_probe(&mut c);
    bench_fig5_amplification(&mut c);
    bench_fig5_forked(&mut c);
    bench_fleet_step(&mut c);
    bench_e16_grid(&mut c);
    c.final_summary();

    let benches: Vec<PerfRecord> = c
        .take_records()
        .into_iter()
        .map(|r| PerfRecord {
            work_per_iter: work_per_iter(&r.id),
            id: r.id,
            median_ns: r.median_ns,
            min_ns: r.min_ns,
            max_ns: r.max_ns,
            iters: r.iters,
            samples: r.samples,
        })
        .collect();
    let report = PerfReport {
        schema: perf::PERF_SCHEMA,
        mode: if quick { "quick".into() } else { "full".into() },
        benches,
    };

    let root = repo_root();
    let bench5 = root.join("BENCH_5.json");
    atomic_write(&bench5, bench5_json(&report).as_bytes()).expect("write BENCH_5.json");
    println!("\nwrote {}", bench5.display());

    let bench7 = root.join("BENCH_7.json");
    atomic_write(&bench7, bench7_json(&report).as_bytes()).expect("write BENCH_7.json");
    println!("wrote {}", bench7.display());
    if let (Some(serial), Some(fl)) = (report.get("serial/e16_grid"), report.get("fleet/e16_grid")) {
        println!(
            "fleet grid: {:.1} us/trial serial vs {:.1} us/trial fleet ({:.2}x)",
            serial.best_unit_ns() / 1000.0,
            fl.best_unit_ns() / 1000.0,
            serial.best_unit_ns() / fl.best_unit_ns(),
        );
    }

    let bench10 = root.join("BENCH_10.json");
    atomic_write(&bench10, bench10_json(&report).as_bytes()).expect("write BENCH_10.json");
    println!("wrote {}", bench10.display());
    let trial_pair = (
        report.get("attack/fig5_amplified_trial"),
        report.get("attack/fig5_amplified_trial_forked"),
    );
    if let (Some(replay), Some(forked)) = trial_pair {
        println!(
            "checkpoint trial: {:.1} us replay vs {:.1} us forked ({:.2}x)",
            replay.best_unit_ns() / 1000.0,
            forked.best_unit_ns() / 1000.0,
            replay.best_unit_ns() / forked.best_unit_ns(),
        );
    }

    for (id, pre_ns) in perf::PRE_PR_STEP_NS {
        if let Some(rec) = report.get(id) {
            println!(
                "{id}: {:.0} ns/step best, {:.0} median ({:.2}x vs pre-PR {pre_ns:.0} ns)",
                rec.best_unit_ns(),
                rec.unit_ns(),
                pre_ns / rec.best_unit_ns()
            );
        }
    }

    let baseline_path = root.join("results/perf_baseline.json");
    if save_baseline {
        std::fs::create_dir_all(root.join("results")).expect("results dir");
        atomic_write(&baseline_path, report.to_json().as_bytes()).expect("write baseline");
        println!("wrote {}", baseline_path.display());
    }

    if check {
        // The two-tier execution gate: restoring a checkpoint must not
        // be slower than replaying the trial from scratch. Unlike the
        // step/* gate this needs no committed baseline — both sides are
        // measured in this very run.
        if let (Some(replay), Some(forked)) = trial_pair {
            if forked.best_unit_ns() > replay.best_unit_ns() {
                eprintln!(
                    "perf gate FAILED: forked trial {:.1} ns slower than replay {:.1} ns",
                    forked.best_unit_ns(),
                    replay.best_unit_ns(),
                );
                std::process::exit(1);
            }
            println!(
                "perf gate: OK (forked trial {:.1} ns <= replay {:.1} ns)",
                forked.best_unit_ns(),
                replay.best_unit_ns(),
            );
        }
        match perf::check_baseline_file(&baseline_path) {
            Ok(Some(baseline)) => {
                let fails = step_regressions(&report, &baseline, MAX_STEP_REGRESS_PCT);
                if fails.is_empty() {
                    println!("perf gate: OK (no step/* regression > {MAX_STEP_REGRESS_PCT}%)");
                } else {
                    eprintln!("perf gate FAILED:");
                    for f in &fails {
                        eprintln!("  {f}");
                    }
                    std::process::exit(1);
                }
            }
            Ok(None) => {
                eprintln!("perf gate: no baseline at {} (run with --save-baseline)", baseline_path.display());
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("perf gate: bad baseline: {e}");
                std::process::exit(1);
            }
        }
    }
}
