//! Property-based tests of the receiver statistics.

use pandora_channels::{midpoint_threshold, welch_t, Histogram, Summary};
use proptest::prelude::*;

proptest! {
    #[test]
    fn histogram_percentages_sum_to_100(
        xs in prop::collection::vec(0u64..100_000, 1..200),
        width in 1u64..1000
    ) {
        let h = Histogram::new(&xs, width);
        let total: f64 = h.rows().iter().map(|r| r.2).sum();
        prop_assert!((total - 100.0).abs() < 1e-6);
        let count: usize = h.rows().iter().map(|r| r.1).sum();
        prop_assert_eq!(count, xs.len());
    }

    #[test]
    fn histogram_mode_has_max_count(
        xs in prop::collection::vec(0u64..10_000, 1..100)
    ) {
        let h = Histogram::new(&xs, 50);
        let mode = h.mode().unwrap();
        let rows = h.rows();
        let mode_count = rows.iter().find(|r| r.0 == mode).unwrap().1;
        prop_assert!(rows.iter().all(|r| r.1 <= mode_count));
    }

    #[test]
    fn welch_t_is_antisymmetric(
        a in prop::collection::vec(0u64..1000, 2..50),
        b in prop::collection::vec(0u64..1000, 2..50)
    ) {
        let t1 = welch_t(&a, &b);
        let t2 = welch_t(&b, &a);
        prop_assert!((t1 + t2).abs() < 1e-9 || (t1.is_infinite() && t2.is_infinite()));
    }

    #[test]
    fn summary_mean_is_bounded_by_extremes(
        xs in prop::collection::vec(0u64..1_000_000, 1..100)
    ) {
        let s = Summary::of(&xs);
        let min = *xs.iter().min().unwrap() as f64;
        let max = *xs.iter().max().unwrap() as f64;
        prop_assert!(s.mean >= min - 1e-9 && s.mean <= max + 1e-9);
        prop_assert!(s.var >= 0.0);
    }

    #[test]
    fn midpoint_threshold_separates_disjoint_populations(
        base in 0u64..1000,
        gap in 100u64..1000
    ) {
        let fast: Vec<u64> = (0..10).map(|i| base + i % 5).collect();
        let slow: Vec<u64> = (0..10).map(|i| base + gap + i % 5).collect();
        let t = midpoint_threshold(&fast, &slow);
        prop_assert!(fast.iter().all(|&x| x < t));
        prop_assert!(slow.iter().all(|&x| x >= t));
    }
}
