//! Cache receivers: Prime+Probe and timed-probe code generation, plus
//! the idealized residency oracle.
//!
//! Two receiver flavours are provided, matching the paper's treatment:
//!
//! * **Timed probes** ([`emit_timed_probe`], [`emit_probe_lines`]) —
//!   real receiver code emitted into the attacker's program: `fence;
//!   rdcycle; load; fence; rdcycle` around each probed line, with the
//!   per-line latency stored to a result buffer the attacker reads
//!   back. Probe order is stride-permuted so the receiver's own loads
//!   do not train the stream prefetcher it is trying to observe.
//! * **Residency oracle** ([`probe_oracle`]) — direct inspection of the
//!   simulated cache tags: the paper's "idealized BitCycle attacker
//!   that can monitor hardware resource usage at flip-flop and
//!   clock-cycle granularity" (§III, footnote 2). Used by tests to
//!   separate channel noise from transmitter behaviour.

use std::sync::Arc;

use pandora_isa::{Asm, Program, Reg};
use pandora_sim::fleet::{self, MachinePool, MemberError, MemberSpec};
use pandora_sim::{Cache, CacheConfig, FaultPlan, Machine, MemFault, SimConfig, SimError};

use crate::retry::{Calibration, RetryError, RetryPolicy};

/// An eviction set: addresses that all map to the target's cache set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EvictionSet {
    addrs: Vec<u64>,
}

impl EvictionSet {
    /// Builds an eviction set of `n` conflicting lines for `target`
    /// under the given cache geometry (usually `n = ways`).
    #[must_use]
    pub fn for_target(cache: &CacheConfig, target: u64, n: usize) -> EvictionSet {
        let probe = Cache::new(*cache, 0);
        EvictionSet {
            addrs: (0..n).map(|i| probe.conflicting_addr(target, i)).collect(),
        }
    }

    /// The conflicting addresses.
    #[must_use]
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }
}

/// Emits code that primes (touches) every address in the set.
pub fn emit_prime(a: &mut Asm, set: &EvictionSet) {
    for &addr in set.addrs() {
        a.ld(Reg::T0, Reg::ZERO, addr as i64);
    }
    a.fence();
}

/// Emits a timed load of `addr`; the latency (plus a small fixed
/// overhead) is stored as a u64 at `result_addr`.
///
/// Sequence: `fence; rdcycle t0; load; fence; rdcycle t1;
/// store(t1 - t0)`. The trailing fence orders the second timer read
/// after the probed load completes.
pub fn emit_timed_probe(a: &mut Asm, addr: u64, result_addr: u64) {
    a.fence();
    a.rdcycle(Reg::T3);
    a.ld(Reg::T4, Reg::ZERO, addr as i64);
    a.fence();
    a.rdcycle(Reg::T5);
    a.sub(Reg::T5, Reg::T5, Reg::T3);
    a.sd(Reg::T5, Reg::ZERO, result_addr as i64);
}

/// Emits timed probes of `count` cache lines starting at `base` with
/// the given `stride`, writing latencies to `result_base + 8*i` (in
/// line-index order).
///
/// Probes are issued in a permuted order (index `* 167 mod count`,
/// when `count` allows) so that consecutive probe addresses do not form
/// a constant stride — otherwise the receiver's own loop would train
/// the very stream prefetcher whose fills it is measuring.
pub fn emit_probe_lines(a: &mut Asm, base: u64, count: usize, stride: u64, result_base: u64) {
    let step = pick_coprime_step(count);
    for k in 0..count {
        let i = (k * step) % count;
        emit_timed_probe(a, base + i as u64 * stride, result_base + 8 * i as u64);
    }
}

/// A multiplier coprime to `count` and large enough to break stride
/// detection.
fn pick_coprime_step(count: usize) -> usize {
    if count <= 2 {
        return 1;
    }
    (167..)
        .find(|s| gcd(*s, count) == 1)
        .expect("some step below count + 167 is coprime")
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Reads back `count` probe latencies written by [`emit_probe_lines`].
///
/// # Panics
///
/// Panics if the result buffer is out of bounds — a harness bug.
#[must_use]
pub fn read_timings(m: &Machine, result_base: u64, count: usize) -> Vec<u64> {
    try_read_timings(m, result_base, count).expect("result buffer in bounds")
}

/// Fallible [`read_timings`]: surfaces an out-of-bounds result buffer
/// as the structured [`MemFault`] instead of panicking, for drivers
/// that compute the buffer address from untrusted experiment
/// parameters.
///
/// # Errors
///
/// The [`MemFault`] of the first out-of-bounds slot read.
pub fn try_read_timings(m: &Machine, result_base: u64, count: usize) -> Result<Vec<u64>, MemFault> {
    (0..count)
        .map(|i| m.mem().read_u64(result_base + 8 * i as u64))
        .collect()
}

/// The indices whose probe latency is below `threshold` (cache hits —
/// i.e. lines someone else touched between prime and probe).
#[must_use]
pub fn hits_below(timings: &[u64], threshold: u64) -> Vec<usize> {
    timings
        .iter()
        .enumerate()
        .filter_map(|(i, &t)| (t < threshold).then_some(i))
        .collect()
}

/// The single most-likely hit: the index with the minimum latency.
#[must_use]
pub fn fastest_index(timings: &[u64]) -> Option<usize> {
    timings
        .iter()
        .enumerate()
        .min_by_key(|(_, &t)| t)
        .map(|(i, _)| i)
}

/// Paired timing populations from one calibration round:
/// `(hit_timings, miss_timings)`.
pub type ProbeTimings = (Vec<u64>, Vec<u64>);

/// One probe-threshold calibration round: measures `trials` timed
/// probes of a warmed line (hits) and `trials` probes of untouched,
/// pairwise-distinct lines (misses), returning `(hits, misses)`.
///
/// `faults` optionally installs a [`FaultPlan`] on the measuring
/// machine — harnesses use periodic line evictions to model co-tenant
/// noise when exercising [`RetryPolicy`] recovery.
///
/// # Errors
///
/// Any [`SimError`] from the measuring run (including injected-fault
/// outcomes such as a deadlock).
pub fn probe_calibration_round(
    cfg: &SimConfig,
    trials: usize,
    faults: Option<&FaultPlan>,
) -> Result<ProbeTimings, SimError> {
    let mut pool = MachinePool::default();
    probe_rounds_pooled(&mut pool, &[*cfg], trials, faults, 1).remove(0)
}

/// The compiled calibration round: warm one line, then time `trials`
/// probes of it (hits) and `trials` probes of pairwise-distinct cold
/// lines (misses).
fn probe_round_program(trials: usize) -> (Program, u64, u64) {
    let hit_addr = 0x10_0000u64;
    let cold_base = 0x20_0000u64;
    let hit_buf = 0x1000u64;
    let miss_buf = hit_buf + 8 * trials as u64;

    let mut a = Asm::new();
    a.ld(Reg::T0, Reg::ZERO, hit_addr as i64); // warm the hit line
    a.fence();
    for i in 0..trials as u64 {
        emit_timed_probe(&mut a, hit_addr, hit_buf + 8 * i);
    }
    for i in 0..trials as u64 {
        // A fresh line per trial, so every probe is a genuine miss.
        emit_timed_probe(&mut a, cold_base + 64 * i, miss_buf + 8 * i);
    }
    a.halt();
    let prog = a.assemble().expect("calibration program assembles");
    (prog, hit_buf, miss_buf)
}

/// Runs one calibration round per config as a fleet grid over pooled
/// machines: the program is assembled once and shared, each round
/// recycles a pool machine ([`Machine::reset_to`]) instead of
/// constructing one, and rounds steal work across `threads` threads
/// (0 = process default). Results come back in config order; a failed
/// round yields `Err` in its slot without disturbing siblings.
fn probe_rounds_pooled(
    pool: &mut MachinePool,
    cfgs: &[SimConfig],
    trials: usize,
    faults: Option<&FaultPlan>,
    threads: usize,
) -> Vec<Result<ProbeTimings, SimError>> {
    let (prog, hit_buf, miss_buf) = probe_round_program(trials);
    let prog = Arc::new(prog);
    let specs: Vec<MemberSpec> = cfgs
        .iter()
        .map(|&cfg| {
            let mut spec = MemberSpec::new(cfg, Arc::clone(&prog)).with_max_cycles(10_000_000);
            if let Some(plan) = faults {
                let plan = plan.clone();
                spec = spec.with_prep(move |m| {
                    m.inject_faults(plan.clone());
                    Ok(())
                });
            }
            spec
        })
        .collect();
    fleet::trial_grid_pooled(pool, &specs, threads, move |_, m, _| {
        (
            read_timings(m, hit_buf, trials),
            read_timings(m, miss_buf, trials),
        )
    })
    .into_iter()
    .map(|r| r.map_err(MemberError::unwrap_sim))
    .collect()
}

/// One probe-calibration round per config, re-dispatching **failed
/// rounds only** under `policy`: the sweep entry point for noise grids
/// that calibrate dozens of intensities at once. All rounds share one
/// compiled program and a machine pool, and run across `threads`
/// threads (0 = process default).
///
/// # Errors
///
/// [`RetryError::Sim`] if any round still fails after the policy's
/// attempt budget (carrying the lowest-index round's last error).
pub fn probe_calibration_grid(
    cfgs: &[SimConfig],
    trials: usize,
    policy: &RetryPolicy,
    threads: usize,
) -> Result<Vec<ProbeTimings>, RetryError> {
    let mut pool = MachinePool::default();
    policy.retry_failed(cfgs.len(), |pending, _attempt| {
        let round_cfgs: Vec<SimConfig> = pending.iter().map(|&i| cfgs[i]).collect();
        probe_rounds_pooled(&mut pool, &round_cfgs, trials, None, threads)
    })
}

/// Calibrates the hit/miss probe threshold for `cfg` under `policy`:
/// retries noisy rounds with more trials until the hit and miss timing
/// populations separate by at least `policy.min_t`.
///
/// # Errors
///
/// See [`RetryPolicy::calibrate`].
pub fn calibrate_probe_threshold(
    cfg: &SimConfig,
    policy: &RetryPolicy,
    base_trials: usize,
) -> Result<Calibration, RetryError> {
    // One pooled machine for every attempt: the pool recycles its
    // machine across rounds ([`Machine::reset_to`]) with allocations
    // kept warm.
    let mut pool = MachinePool::default();
    policy.calibrate(base_trials, |trials, _attempt| {
        probe_rounds_pooled(&mut pool, &[*cfg], trials, None, 1).remove(0)
    })
}

/// The idealized residency oracle: whether each of `count` lines
/// starting at `base` (stride `stride`) is resident in the L1 or L2.
#[must_use]
pub fn probe_oracle(m: &Machine, base: u64, count: usize, stride: u64) -> Vec<bool> {
    (0..count)
        .map(|i| {
            let a = base + i as u64 * stride;
            m.hierarchy().in_l1(a) || m.hierarchy().in_l2(a)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_sim::{MemLatency, SimConfig};

    #[test]
    fn eviction_set_maps_to_target_set() {
        let cfg = CacheConfig::l1d();
        let set = EvictionSet::for_target(&cfg, 0x1234, 4);
        let c = Cache::new(cfg, 0);
        assert_eq!(set.addrs().len(), 4);
        for &a in set.addrs() {
            assert_eq!(c.set_index(a), c.set_index(0x1234));
            assert_ne!(c.line_addr(a), c.line_addr(0x1234));
        }
    }

    #[test]
    fn coprime_step_is_coprime() {
        for count in [2usize, 3, 100, 167, 256, 334] {
            let s = pick_coprime_step(count);
            assert_eq!(gcd(s, count), 1, "count {count} step {s}");
        }
    }

    #[test]
    fn timed_probe_distinguishes_hit_from_miss() {
        let mut a = Asm::new();
        let hot = 0x4000u64;
        let cold = 0x8000u64;
        // Warm the hot line, then time both.
        a.ld(Reg::T0, Reg::ZERO, hot as i64);
        a.fence();
        emit_timed_probe(&mut a, hot, 0x100);
        emit_timed_probe(&mut a, cold, 0x108);
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(SimConfig::default());
        m.load_program(&prog);
        m.run(100_000).unwrap();
        let hot_t = m.mem().read_u64(0x100).unwrap();
        let cold_t = m.mem().read_u64(0x108).unwrap();
        let lat = MemLatency::default();
        assert!(
            hot_t + (lat.dram - lat.l1) / 2 < cold_t,
            "hit {hot_t} vs miss {cold_t}"
        );
    }

    #[test]
    fn probe_lines_report_planted_hit() {
        let lines = 32usize;
        let base = 0x2_0000u64;
        let result = 0x400u64;
        let secret = 13usize;
        let mut a = Asm::new();
        // The "transmitter": touch line `secret`.
        a.ld(Reg::T0, Reg::ZERO, (base + secret as u64 * 64) as i64);
        a.fence();
        emit_probe_lines(&mut a, base, lines, 64, result);
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(SimConfig::default());
        m.load_program(&prog);
        m.run(1_000_000).unwrap();
        let timings = read_timings(&m, result, lines);
        assert_eq!(fastest_index(&timings), Some(secret));
    }

    #[test]
    fn oracle_sees_residency() {
        let mut a = Asm::new();
        a.ld(Reg::T0, Reg::ZERO, 0x4000);
        a.fence();
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(SimConfig::default());
        m.load_program(&prog);
        m.run(10_000).unwrap();
        let r = probe_oracle(&m, 0x4000, 2, 64);
        assert!(r[0], "touched line resident");
        assert!(!r[1], "next line not resident");
    }

    #[test]
    fn hits_below_filters() {
        assert_eq!(hits_below(&[200, 20, 210, 25], 100), vec![1, 3]);
        assert!(hits_below(&[200, 210], 100).is_empty());
    }

    #[test]
    fn calibration_separates_hit_from_miss() {
        let cfg = SimConfig::default();
        let policy = crate::retry::RetryPolicy::default();
        let cal = calibrate_probe_threshold(&cfg, &policy, 16).unwrap();
        assert_eq!(cal.attempts, 1, "a quiet machine calibrates first try");
        assert!(cal.t >= policy.min_t);
        let lat = MemLatency::default();
        assert!(
            (cal.threshold as f64) > cal.fast.mean
                && (cal.threshold) < lat.dram,
            "threshold {} sits between hit ({:.1}) and miss ({:.1}) means",
            cal.threshold,
            cal.fast.mean,
            cal.slow.mean,
        );
    }

    #[test]
    fn noisy_calibration_round_recovers_via_retry() {
        use pandora_sim::{FaultEvent, FaultKind};
        let cfg = SimConfig::default();
        let policy = crate::retry::RetryPolicy::default();
        // Evict the hit line every cycle through the measurement window:
        // the "hit" population degrades to misses and Welch's t
        // collapses, so attempt 0 must be rejected.
        let noise = FaultPlan::new(
            (0..5_000)
                .map(|cycle| FaultEvent {
                    cycle,
                    kind: FaultKind::EvictLine { addr: 0x10_0000 },
                })
                .collect(),
        );
        let cal = policy
            .calibrate(12, |trials, attempt| {
                probe_calibration_round(&cfg, trials, (attempt == 0).then_some(&noise))
            })
            .unwrap();
        assert!(
            cal.attempts >= 2,
            "the jammed first round must have been retried"
        );
        assert!(cal.t >= policy.min_t);
    }
}
