//! Noise-hardened receiver machinery: channel-quality reporting
//! (SNR / estimated BER), bit-error accounting, repetition coding, and
//! adaptive threshold re-calibration.
//!
//! Under a quiet machine a receiver calibrates once and classifies
//! forever; under environmental noise (`pandora_sim::noise`) the
//! hit/miss populations drift together and a fixed threshold silently
//! rots. The tools here are the standard communication-layer answers:
//!
//! * [`ChannelQuality`] — per-run SNR and a Gaussian-overlap BER
//!   estimate, so experiments can report *how degraded* a channel is
//!   rather than only whether a round decoded.
//! * [`BitErrorCounter`] — ground-truth symbol/bit error accounting
//!   for sweeps that know what was sent.
//! * [`majority_vote`] — repetition decoding over independently noisy
//!   rounds (redundancy trades samples for accuracy).
//! * [`AdaptiveReceiver`] — a calibrated threshold that *watches its
//!   own separation*: when observed populations degrade below the
//!   [`RetryPolicy`]'s acceptance bar it re-calibrates through the same
//!   bounded-retry loop the initial calibration used.

use std::collections::BTreeMap;

use pandora_sim::SimError;

use crate::retry::{Calibration, RetryError, RetryPolicy};
use crate::stats::{welch_t, Summary};

/// Complementary error function, Abramowitz & Stegun 7.1.26 (max
/// absolute error 1.5e-7 — far below anything a timing experiment can
/// resolve). Local so the crate stays free of a libm dependency.
fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    poly * (-x * x).exp()
}

/// Signal quality of a binary timing channel, derived from the two
/// population summaries a calibration produces.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ChannelQuality {
    /// Signal-to-noise ratio: squared mean separation over the pooled
    /// variance. Infinite for noiseless separation, 0 for none.
    pub snr: f64,
    /// Estimated raw bit-error rate of a midpoint-threshold receiver,
    /// assuming Gaussian populations: `Q(d / 2σ)` where `d` is the
    /// mean separation and `σ` the pooled standard deviation.
    pub est_ber: f64,
}

impl ChannelQuality {
    /// Quality of the channel whose fast/slow populations have the
    /// given summaries (`slow` is expected to have the larger mean;
    /// an inverted or collapsed channel reports `snr == 0`,
    /// `est_ber >= 0.5`).
    #[must_use]
    pub fn of(fast: &Summary, slow: &Summary) -> ChannelQuality {
        let d = slow.mean - fast.mean;
        let pooled_var = (fast.var + slow.var) / 2.0;
        if pooled_var <= 0.0 {
            return if d > 0.0 {
                ChannelQuality {
                    snr: f64::INFINITY,
                    est_ber: 0.0,
                }
            } else {
                ChannelQuality {
                    snr: 0.0,
                    est_ber: 0.5,
                }
            };
        }
        if d <= 0.0 {
            // No (or inverted) separation: the threshold is guessing.
            return ChannelQuality {
                snr: 0.0,
                est_ber: (0.5 * erfc(d / (2.0 * (2.0 * pooled_var).sqrt()))).min(1.0),
            };
        }
        ChannelQuality {
            snr: d * d / pooled_var,
            est_ber: 0.5 * erfc(d / (2.0 * (2.0 * pooled_var).sqrt())),
        }
    }

    /// Quality from raw fast/slow samples.
    #[must_use]
    pub fn from_samples(fast: &[u64], slow: &[u64]) -> ChannelQuality {
        ChannelQuality::of(&Summary::of(fast), &Summary::of(slow))
    }

    /// Quality of an accepted calibration.
    #[must_use]
    pub fn of_calibration(cal: &Calibration) -> ChannelQuality {
        ChannelQuality::of(&cal.fast, &cal.slow)
    }

    /// SNR in decibels (`-inf` for a dead channel).
    #[must_use]
    pub fn snr_db(&self) -> f64 {
        10.0 * self.snr.log10()
    }
}

/// Ground-truth error accounting for channel sweeps: feed it each
/// `(sent, decoded)` pair and read back symbol- and bit-error rates.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BitErrorCounter {
    /// Symbols sent.
    pub symbols: u64,
    /// Symbols decoded to the wrong value (or not decoded at all).
    pub symbol_errors: u64,
    /// Bits sent (`symbol_bits` per symbol).
    pub bits: u64,
    /// Bits flipped between sent and decoded symbols; an undecoded
    /// symbol (erasure) counts every bit as an error.
    pub bit_errors: u64,
}

impl BitErrorCounter {
    /// An empty counter.
    #[must_use]
    pub fn new() -> BitErrorCounter {
        BitErrorCounter::default()
    }

    /// Records one round: `sent` was transmitted, `decoded` came back
    /// (`None` = erasure), the symbol carries `symbol_bits` bits.
    pub fn record(&mut self, sent: usize, decoded: Option<usize>, symbol_bits: u32) {
        self.symbols += 1;
        self.bits += u64::from(symbol_bits);
        match decoded {
            Some(d) if d == sent => {}
            Some(d) => {
                self.symbol_errors += 1;
                let mask = if symbol_bits >= 64 {
                    u64::MAX
                } else {
                    (1u64 << symbol_bits) - 1
                };
                self.bit_errors += u64::from(((d ^ sent) as u64 & mask).count_ones());
            }
            None => {
                self.symbol_errors += 1;
                self.bit_errors += u64::from(symbol_bits);
            }
        }
    }

    /// Symbol error rate in [0, 1] (0 before any round).
    #[must_use]
    pub fn ser(&self) -> f64 {
        if self.symbols == 0 {
            0.0
        } else {
            self.symbol_errors as f64 / self.symbols as f64
        }
    }

    /// Bit error rate in [0, 1] (0 before any round).
    #[must_use]
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.bits as f64
        }
    }
}

/// Repetition decoding: the value winning a strict majority of the
/// vote slots (erasures count as abstentions but still occupy a slot,
/// so 2 agreeing votes out of 5 do not win). Ties and empty inputs
/// yield `None`; iteration order is value order, so the result is
/// deterministic.
#[must_use]
pub fn majority_vote<T: Copy + Ord>(votes: &[Option<T>]) -> Option<T> {
    let mut counts: BTreeMap<T, usize> = BTreeMap::new();
    for v in votes.iter().flatten() {
        *counts.entry(*v).or_insert(0) += 1;
    }
    let (&value, &count) = counts.iter().max_by_key(|(_, &c)| c)?;
    (count * 2 > votes.len()).then_some(value)
}

/// A calibrated binary receiver that re-calibrates itself when its
/// separation degrades.
///
/// Wraps the [`Calibration`] produced by [`RetryPolicy::calibrate`]
/// and adds drift detection: feed each round's observed fast/slow
/// samples to [`AdaptiveReceiver::observe`]; when their Welch's t
/// falls below the policy's acceptance bar the receiver re-runs the
/// calibration round through the same bounded-retry loop and adopts
/// the fresh threshold.
#[derive(Clone, Debug)]
pub struct AdaptiveReceiver {
    policy: RetryPolicy,
    cal: Calibration,
    recalibrations: u32,
}

impl AdaptiveReceiver {
    /// Calibrates a new receiver with `policy` over `round` (same
    /// contract as [`RetryPolicy::calibrate`]).
    ///
    /// # Errors
    ///
    /// Propagates the calibration's [`RetryError`].
    pub fn calibrate(
        policy: RetryPolicy,
        base_trials: usize,
        round: impl FnMut(usize, u32) -> Result<(Vec<u64>, Vec<u64>), SimError>,
    ) -> Result<AdaptiveReceiver, RetryError> {
        let cal = policy.calibrate(base_trials, round)?;
        Ok(AdaptiveReceiver {
            policy,
            cal,
            recalibrations: 0,
        })
    }

    /// Wraps an existing calibration.
    #[must_use]
    pub fn from_calibration(policy: RetryPolicy, cal: Calibration) -> AdaptiveReceiver {
        AdaptiveReceiver {
            policy,
            cal,
            recalibrations: 0,
        }
    }

    /// The current classification threshold.
    #[must_use]
    pub fn threshold(&self) -> u64 {
        self.cal.threshold
    }

    /// The calibration currently in force.
    #[must_use]
    pub fn calibration(&self) -> &Calibration {
        &self.cal
    }

    /// How many times the receiver has re-calibrated.
    #[must_use]
    pub fn recalibrations(&self) -> u32 {
        self.recalibrations
    }

    /// Classifies one sample against the current threshold.
    #[must_use]
    pub fn classify_fast(&self, sample: u64) -> bool {
        sample < self.cal.threshold
    }

    /// Whether freshly observed fast/slow populations have drifted
    /// below the policy's separation bar (so the in-force threshold is
    /// no longer trustworthy).
    #[must_use]
    pub fn drifted(&self, fast: &[u64], slow: &[u64]) -> bool {
        self.policy.needs_recalibration(welch_t(slow, fast))
    }

    /// Feeds one round's observed populations: if they drifted, re-run
    /// calibration via `round` and adopt the new threshold. Returns
    /// `Ok(true)` when a re-calibration happened.
    ///
    /// # Errors
    ///
    /// Propagates [`RetryError`] when drift was detected but the
    /// re-calibration itself could not separate the populations — the
    /// channel is genuinely dead at this noise level.
    pub fn observe(
        &mut self,
        fast: &[u64],
        slow: &[u64],
        base_trials: usize,
        round: impl FnMut(usize, u32) -> Result<(Vec<u64>, Vec<u64>), SimError>,
    ) -> Result<bool, RetryError> {
        if !self.drifted(fast, slow) {
            return Ok(false);
        }
        self.cal = self.policy.calibrate(base_trials, round)?;
        self.recalibrations += 1;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop(center: u64, spread: u64, n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| center + i % (spread + 1)).collect()
    }

    #[test]
    fn erfc_matches_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(4.0) < 1e-7);
    }

    #[test]
    fn quality_ranks_channels() {
        let clean = ChannelQuality::from_samples(&pop(100, 2, 40), &pop(300, 2, 40));
        let murky = ChannelQuality::from_samples(&pop(100, 40, 40), &pop(140, 40, 40));
        assert!(clean.snr > murky.snr);
        assert!(clean.est_ber < 1e-6);
        assert!(murky.est_ber > clean.est_ber);
        assert!(clean.snr_db() > murky.snr_db());
    }

    #[test]
    fn quality_degenerate_cases() {
        // Zero variance, separated: perfect channel.
        let perfect = ChannelQuality::from_samples(&[100, 100], &[200, 200]);
        assert!(perfect.snr.is_infinite());
        assert_eq!(perfect.est_ber, 0.0);
        // Identical populations: coin-flip channel.
        let dead = ChannelQuality::from_samples(&[100, 100], &[100, 100]);
        assert_eq!(dead.snr, 0.0);
        assert!(dead.est_ber >= 0.5);
        // Inverted separation with variance: no usable signal.
        let inv = ChannelQuality::from_samples(&pop(300, 3, 20), &pop(100, 3, 20));
        assert_eq!(inv.snr, 0.0);
        assert!(inv.est_ber >= 0.5);
    }

    #[test]
    fn bit_error_counter_accounts_symbols_and_bits() {
        let mut c = BitErrorCounter::new();
        c.record(0b1010, Some(0b1010), 4); // clean
        c.record(0b1010, Some(0b1000), 4); // 1 bit flipped
        c.record(0b1010, None, 4); // erasure: all 4 bits
        assert_eq!(c.symbols, 3);
        assert_eq!(c.symbol_errors, 2);
        assert_eq!(c.bits, 12);
        assert_eq!(c.bit_errors, 5);
        assert!((c.ser() - 2.0 / 3.0).abs() < 1e-9);
        assert!((c.ber() - 5.0 / 12.0).abs() < 1e-9);
        assert_eq!(BitErrorCounter::new().ser(), 0.0);
        assert_eq!(BitErrorCounter::new().ber(), 0.0);
    }

    #[test]
    fn majority_vote_requires_a_strict_majority() {
        assert_eq!(majority_vote(&[Some(7), Some(7), Some(3)]), Some(7));
        assert_eq!(majority_vote(&[Some(7), Some(3)]), None, "tie");
        assert_eq!(
            majority_vote(&[Some(7), Some(7), None, None, None]),
            None,
            "erasures occupy slots"
        );
        assert_eq!(majority_vote(&[Some(7)]), Some(7), "redundancy 1 passes through");
        assert_eq!(majority_vote::<u16>(&[]), None);
        assert_eq!(majority_vote::<u16>(&[None, None]), None);
    }

    #[test]
    fn adaptive_receiver_recalibrates_on_drift() {
        let policy = RetryPolicy::default();
        let mut rx = AdaptiveReceiver::calibrate(policy, 20, |trials, _| {
            Ok((pop(100, 2, trials), pop(300, 2, trials)))
        })
        .unwrap();
        let t0 = rx.threshold();
        assert!(rx.classify_fast(150) && !rx.classify_fast(250));
        assert_eq!(rx.recalibrations(), 0);

        // Clean observations: nothing happens.
        let acted = rx
            .observe(&pop(100, 2, 20), &pop(300, 2, 20), 20, |_, _| {
                panic!("must not recalibrate without drift")
            })
            .unwrap();
        assert!(!acted);

        // The environment collapsed the separation (both populations
        // now overlap); the receiver notices and adopts the fresh,
        // higher operating point.
        let acted = rx
            .observe(&pop(400, 5, 20), &pop(402, 5, 20), 20, |trials, _| {
                Ok((pop(400, 2, trials), pop(600, 2, trials)))
            })
            .unwrap();
        assert!(acted);
        assert_eq!(rx.recalibrations(), 1);
        assert!(rx.threshold() > t0);
        assert_eq!(rx.calibration().attempts, 1);
    }

    #[test]
    fn adaptive_receiver_surfaces_dead_channels() {
        let policy = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let mut rx = AdaptiveReceiver::calibrate(policy, 10, |trials, _| {
            Ok((pop(100, 2, trials), pop(300, 2, trials)))
        })
        .unwrap();
        let err = rx
            .observe(&pop(100, 1, 10), &pop(100, 1, 10), 10, |trials, _| {
                Ok((pop(100, 1, trials), pop(100, 1, trials)))
            })
            .unwrap_err();
        assert!(matches!(err, RetryError::Indistinguishable { .. }));
    }
}
