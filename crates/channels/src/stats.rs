//! Timing statistics for receivers: summary statistics, Welch's t
//! statistic for distinguishability, and the histogram shape used to
//! report Figure 6.

/// Summary statistics of a timing sample.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub var: f64,
}

impl Summary {
    /// Computes summary statistics. Empty samples yield zeros.
    #[must_use]
    pub fn of(xs: &[u64]) -> Summary {
        let n = xs.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: 0.0,
                var: 0.0,
            };
        }
        let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            xs.iter()
                .map(|&x| {
                    let d = x as f64 - mean;
                    d * d
                })
                .sum::<f64>()
                / (n - 1) as f64
        };
        Summary { n, mean, var }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std(&self) -> f64 {
        self.var.sqrt()
    }
}

/// Welch's t statistic between two samples; large |t| means the two
/// timing distributions are reliably distinguishable (the attacker's
/// success criterion).
#[must_use]
pub fn welch_t(a: &[u64], b: &[u64]) -> f64 {
    let (sa, sb) = (Summary::of(a), Summary::of(b));
    if sa.n == 0 || sb.n == 0 {
        return 0.0;
    }
    let se = (sa.var / sa.n as f64 + sb.var / sb.n as f64).sqrt();
    if se == 0.0 {
        if sa.mean == sb.mean {
            0.0
        } else {
            f64::INFINITY * (sa.mean - sb.mean).signum()
        }
    } else {
        (sa.mean - sb.mean) / se
    }
}

/// A midpoint threshold separating two timing populations.
#[must_use]
pub fn midpoint_threshold(fast: &[u64], slow: &[u64]) -> u64 {
    let (f, s) = (Summary::of(fast), Summary::of(slow));
    ((f.mean + s.mean) / 2.0).round() as u64
}

/// A fixed-width histogram over cycle counts — the Fig 6 presentation
/// (frequency as a percentage per runtime bucket).
#[derive(Clone, PartialEq, Debug)]
pub struct Histogram {
    bucket_width: u64,
    lo: u64,
    counts: Vec<usize>,
    total: usize,
}

impl Histogram {
    /// Builds a histogram with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero.
    #[must_use]
    pub fn new(samples: &[u64], bucket_width: u64) -> Histogram {
        assert!(bucket_width > 0, "bucket width must be nonzero");
        if samples.is_empty() {
            return Histogram {
                bucket_width,
                lo: 0,
                counts: Vec::new(),
                total: 0,
            };
        }
        let min = *samples.iter().min().expect("nonempty");
        let max = *samples.iter().max().expect("nonempty");
        let lo = (min / bucket_width) * bucket_width;
        let n_buckets = ((max - lo) / bucket_width + 1) as usize;
        let mut counts = vec![0usize; n_buckets];
        for &s in samples {
            counts[((s - lo) / bucket_width) as usize] += 1;
        }
        Histogram {
            bucket_width,
            lo,
            counts,
            total: samples.len(),
        }
    }

    /// `(bucket_start, count, percentage)` rows in cycle order.
    #[must_use]
    pub fn rows(&self) -> Vec<(u64, usize, f64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                (
                    self.lo + i as u64 * self.bucket_width,
                    c,
                    if self.total == 0 {
                        0.0
                    } else {
                        100.0 * c as f64 / self.total as f64
                    },
                )
            })
            .collect()
    }

    /// The bucket start with the highest count (the distribution mode).
    #[must_use]
    pub fn mode(&self) -> Option<u64> {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| self.lo + i as u64 * self.bucket_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2, 4, 4, 4, 5, 5, 7, 9]);
        assert!((s.mean - 5.0).abs() < 1e-9);
        assert!((s.var - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn summary_edge_cases() {
        assert_eq!(Summary::of(&[]).n, 0);
        let one = Summary::of(&[5]);
        assert_eq!(one.mean, 5.0);
        assert_eq!(one.var, 0.0);
    }

    #[test]
    fn welch_t_separates_distinct_populations() {
        let fast: Vec<u64> = (0..50).map(|i| 100 + i % 3).collect();
        let slow: Vec<u64> = (0..50).map(|i| 220 + i % 3).collect();
        assert!(welch_t(&slow, &fast) > 10.0);
        assert!(welch_t(&fast, &slow) < -10.0);
    }

    #[test]
    fn welch_t_near_zero_for_same_population() {
        let a: Vec<u64> = (0..50).map(|i| 100 + (i * 7) % 5).collect();
        let b: Vec<u64> = (0..50).map(|i| 100 + (i * 3) % 5).collect();
        assert!(welch_t(&a, &b).abs() < 3.0);
    }

    #[test]
    fn midpoint_threshold_sits_between() {
        let t = midpoint_threshold(&[100, 102], &[220, 222]);
        assert!(t > 102 && t < 220);
    }

    #[test]
    fn histogram_rows_and_mode() {
        let h = Histogram::new(&[10, 11, 12, 25, 26, 27, 28], 10);
        let rows = h.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (10, 3, 300.0 / 7.0));
        assert_eq!(rows[1].1, 4);
        assert_eq!(h.mode(), Some(20));
    }

    #[test]
    fn histogram_percentages_sum_to_100() {
        let h = Histogram::new(&[1, 5, 9, 100, 105, 200], 10);
        let sum: f64 = h.rows().iter().map(|r| r.2).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(&[], 10);
        assert!(h.rows().is_empty());
        assert_eq!(h.mode(), None);
    }
}
