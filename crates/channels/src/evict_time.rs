//! Evict+Time (§II): instead of probing its own lines, the receiver
//! *evicts* a candidate set and measures how the **victim's runtime**
//! changes — slower iff the victim actually uses that set.
//!
//! This is the receiver flavour for victims the attacker can invoke but
//! not interleave with (e.g. a request/response service), and the
//! conceptual basis of the amplification gadget's flush sub-gadget.

use std::sync::Arc;

use pandora_isa::{Asm, Program, Reg};
use pandora_sim::fleet::{self, MachinePool, MemberError, MemberSpec};
use pandora_sim::{FaultPlan, SimConfig, SimError};

use crate::prime_probe::{try_read_timings, EvictionSet};
use crate::retry::{Calibration, RetryError, RetryPolicy};

/// Emits the eviction step: touch every conflicting line of `set`,
/// displacing the target set's contents, then fence.
pub fn emit_evict(a: &mut Asm, set: &EvictionSet) {
    for &addr in set.addrs() {
        a.ld(Reg::T3, Reg::ZERO, addr as i64);
    }
    a.fence();
}

/// Emits a timed call to the victim code between two serialized
/// `rdcycle`s; the elapsed time is stored at `result_addr`.
///
/// `emit_victim` is invoked to place the victim's instructions.
pub fn emit_timed_victim(
    a: &mut Asm,
    result_addr: u64,
    emit_victim: impl FnOnce(&mut Asm),
) {
    a.fence();
    a.rdcycle(Reg::T3);
    emit_victim(a);
    a.fence();
    a.rdcycle(Reg::T4);
    a.sub(Reg::T4, Reg::T4, Reg::T3);
    a.sd(Reg::T4, Reg::ZERO, result_addr as i64);
}

/// Paired timing populations from one Evict+Time round:
/// `(fast_timings, slow_timings)` — victim line resident vs evicted.
pub type EvictTimings = (Vec<u64>, Vec<u64>);

/// One Evict+Time calibration round: times a victim load `trials` times
/// with an *unrelated* set evicted beforehand (fast — the victim's line
/// stays resident) and `trials` times with the victim's own set evicted
/// (slow), returning `(fast, slow)`.
///
/// `faults` optionally installs a [`FaultPlan`] on the measuring
/// machine, for harnesses exercising [`RetryPolicy`] recovery under
/// injected noise.
///
/// # Errors
///
/// Any [`SimError`] from the measuring run.
pub fn evict_time_round(
    cfg: &SimConfig,
    trials: usize,
    faults: Option<&FaultPlan>,
) -> Result<EvictTimings, SimError> {
    let mut pool = MachinePool::default();
    evict_rounds_pooled(&mut pool, &[*cfg], trials, faults, 1).remove(0)
}

/// The compiled Evict+Time round for `cfg`'s L1 geometry: `trials`
/// timed victim accesses after evicting an unrelated set (fast) and
/// `trials` after evicting the victim's own set (slow).
///
/// Eviction sets depend on the config's L1 geometry, so unlike the
/// Prime+Probe round this program is per-config, not universal.
fn evict_round_program(cfg: &SimConfig, trials: usize) -> (Program, u64, u64) {
    let victim_addr = 0x10_0000u64;
    let other_addr = 0x18_0040u64; // maps to a different L1 set
    let fast_buf = 0x1000u64;
    let slow_buf = fast_buf + 8 * trials as u64;
    let ways = cfg.l1d.ways + 8; // over-provision to defeat LRU noise

    let victim_set = EvictionSet::for_target(&cfg.l1d, victim_addr, ways);
    let other_set = EvictionSet::for_target(&cfg.l1d, other_addr, ways);

    let mut a = Asm::new();
    a.ld(Reg::T0, Reg::ZERO, victim_addr as i64); // steady state
    a.fence();
    for i in 0..trials as u64 {
        emit_evict(&mut a, &other_set);
        emit_timed_victim(&mut a, fast_buf + 8 * i, |v| {
            v.ld(Reg::T0, Reg::ZERO, victim_addr as i64);
        });
    }
    for i in 0..trials as u64 {
        emit_evict(&mut a, &victim_set);
        emit_timed_victim(&mut a, slow_buf + 8 * i, |v| {
            v.ld(Reg::T0, Reg::ZERO, victim_addr as i64);
        });
    }
    a.halt();
    let prog = a.assemble().expect("calibration program assembles");
    (prog, fast_buf, slow_buf)
}

/// Runs one Evict+Time round per config as a fleet grid over pooled
/// machines. Programs are assembled per distinct L1 geometry (the
/// eviction sets depend on it) and shared within a geometry; machines
/// are recycled between rounds; rounds steal work across `threads`
/// threads (0 = process default). Results come back in config order.
fn evict_rounds_pooled(
    pool: &mut MachinePool,
    cfgs: &[SimConfig],
    trials: usize,
    faults: Option<&FaultPlan>,
    threads: usize,
) -> Vec<Result<EvictTimings, SimError>> {
    if cfgs.is_empty() {
        return Vec::new();
    }
    let mut cached: Vec<(pandora_sim::CacheConfig, Arc<Program>, u64, u64)> = Vec::new();
    let specs: Vec<MemberSpec> = cfgs
        .iter()
        .map(|&cfg| {
            let (prog, _, _) = match cached.iter().find(|(l1d, ..)| *l1d == cfg.l1d) {
                Some((_, p, f, s)) => (Arc::clone(p), *f, *s),
                None => {
                    let (p, f, s) = evict_round_program(&cfg, trials);
                    let p = Arc::new(p);
                    cached.push((cfg.l1d, Arc::clone(&p), f, s));
                    (p, f, s)
                }
            };
            let mut spec = MemberSpec::new(cfg, prog).with_max_cycles(50_000_000);
            if let Some(plan) = faults {
                let plan = plan.clone();
                spec = spec.with_prep(move |m| {
                    m.inject_faults(plan.clone());
                    Ok(())
                });
            }
            spec
        })
        .collect();
    // The result buffers sit at the same addresses for every geometry.
    let (fast_buf, slow_buf) = (cached[0].2, cached[0].3);
    fleet::trial_grid_pooled(pool, &specs, threads, move |_, m, _| {
        let read = |buf: u64| {
            try_read_timings(m, buf, trials).expect("result buffer in bounds")
        };
        (read(fast_buf), read(slow_buf))
    })
    .into_iter()
    .map(|r| r.map_err(MemberError::unwrap_sim))
    .collect()
}

/// Calibrates the Evict+Time runtime margin for `cfg` under `policy`:
/// the returned [`Calibration`]'s threshold separates "victim used the
/// evicted set" from "victim untouched" runtimes.
///
/// # Errors
///
/// See [`RetryPolicy::calibrate`].
pub fn calibrate_evict_margin(
    cfg: &SimConfig,
    policy: &RetryPolicy,
    base_trials: usize,
) -> Result<Calibration, RetryError> {
    // One pooled machine for every attempt: the pool recycles its
    // machine across rounds ([`Machine::reset_to`]) with allocations
    // kept warm.
    let mut pool = MachinePool::default();
    policy.calibrate(base_trials, |trials, _attempt| {
        evict_rounds_pooled(&mut pool, &[*cfg], trials, None, 1).remove(0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_sim::{CacheConfig, Machine, SimConfig};

    /// Evict+Time distinguishes which set a victim load maps to.
    #[test]
    fn victim_slows_down_iff_its_set_is_evicted() {
        let victim_addr = 0x1_2340u64;
        let other_addr = 0x5_0000u64; // different set

        let run = |evicted: u64| -> u64 {
            let cfg = SimConfig::default();
            let set = EvictionSet::for_target(&CacheConfig::l1d(), evicted, 12);
            let mut a = Asm::new();
            // Warm the victim's line (steady-state), then evict, then
            // time the victim access.
            a.ld(Reg::T0, Reg::ZERO, victim_addr as i64);
            a.fence();
            emit_evict(&mut a, &set);
            emit_timed_victim(&mut a, 0x100, |v| {
                v.ld(Reg::T0, Reg::ZERO, victim_addr as i64);
            });
            a.halt();
            let prog = a.assemble().unwrap();
            let mut m = Machine::new(cfg);
            m.load_program(&prog);
            m.run(1_000_000).unwrap();
            m.mem().read_u64(0x100).unwrap()
        };

        let hit_time = run(other_addr);
        let evicted_time = run(victim_addr);
        // The L1-geometry eviction set displaces the line to the L2, so
        // the observable penalty is the L2-minus-L1 latency difference.
        assert!(
            hit_time + 8 <= evicted_time,
            "evicting the victim's set must slow it: {hit_time} vs {evicted_time}"
        );
    }

    /// Sweeping eviction over sets localizes the victim's secret-indexed
    /// access — the classic Evict+Time address-recovery loop.
    #[test]
    fn sweep_recovers_the_victim_set() {
        let l1 = CacheConfig::l1d();
        let secret_set = 37usize;
        let victim_addr = (secret_set * l1.line) as u64 + 0x2_0000;
        let probe = pandora_sim::Cache::new(l1, 0);
        assert_eq!(probe.set_index(victim_addr), secret_set);

        let mut slow_sets = Vec::new();
        for set in (secret_set - 1)..=(secret_set + 1) {
            let anchor = (set * l1.line) as u64;
            let eset = EvictionSet::for_target(&l1, anchor, 12);
            let mut a = Asm::new();
            a.ld(Reg::T0, Reg::ZERO, victim_addr as i64);
            a.fence();
            emit_evict(&mut a, &eset);
            emit_timed_victim(&mut a, 0x100, |v| {
                v.ld(Reg::T0, Reg::ZERO, victim_addr as i64);
            });
            a.halt();
            let prog = a.assemble().unwrap();
            let mut m = Machine::new(SimConfig::default());
            m.load_program(&prog);
            m.run(1_000_000).unwrap();
            let t = m.mem().read_u64(0x100).unwrap();
            if t > 12 {
                slow_sets.push(set);
            }
        }
        assert_eq!(slow_sets, vec![secret_set]);
    }
}
