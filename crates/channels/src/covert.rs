//! A cache covert channel (§II): a sender encodes a value by touching
//! one of `N` cache lines; a receiver recovers it by timing probes.
//!
//! This is the final hop of both proof-of-concept attacks — the DMP's
//! prefetch of `X[secret]` is exactly a send over this channel — and a
//! self-contained demonstration used by the quickstart example and the
//! channel-capacity analysis (log2 N bits per round, §IV-A3).

use std::collections::HashMap;
use std::sync::Arc;

use pandora_isa::{Asm, Program, Reg};
use pandora_sim::fleet::{self, MemberError, MemberSpec};
use pandora_sim::{Machine, SimConfig, SimError};

use crate::adaptive::majority_vote;
use crate::prime_probe::{emit_probe_lines, fastest_index, read_timings};

/// Cycle budget for one send/receive round.
const ROUND_MAX_CYCLES: u64 = 20_000_000;

/// Configuration of a one-shot cache covert channel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CovertChannel {
    /// Base address of the line array.
    pub base: u64,
    /// Number of distinguishable symbols (lines).
    pub symbols: usize,
    /// Line stride in bytes.
    pub stride: u64,
    /// Result buffer address for the receiver's timings.
    pub result_base: u64,
}

impl CovertChannel {
    /// A 256-symbol (one byte per round) channel.
    #[must_use]
    pub fn byte_channel(base: u64, result_base: u64) -> CovertChannel {
        CovertChannel {
            base,
            symbols: 256,
            stride: 64,
            result_base,
        }
    }

    /// The channel capacity upper bound in bits per round: log2(symbols).
    #[must_use]
    pub fn capacity_bits(&self) -> f64 {
        (self.symbols as f64).log2()
    }

    /// Emits the sender: touch the line encoding `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not a valid symbol.
    pub fn emit_send(&self, a: &mut Asm, value: usize) {
        assert!(value < self.symbols, "symbol out of range");
        a.ld(Reg::T0, Reg::ZERO, (self.base + value as u64 * self.stride) as i64);
        a.fence();
    }

    /// Emits the receiver: probe every symbol line, recording latencies.
    pub fn emit_receive(&self, a: &mut Asm) {
        emit_probe_lines(a, self.base, self.symbols, self.stride, self.result_base);
    }

    /// Decodes the received symbol from a finished machine.
    #[must_use]
    pub fn decode(&self, m: &Machine) -> Option<usize> {
        fastest_index(&read_timings(m, self.result_base, self.symbols))
    }

    /// Runs a complete send/receive round for `value` on a fresh
    /// machine; returns the decoded symbol.
    ///
    /// # Panics
    ///
    /// Panics if the round's program fails to run — a harness bug.
    #[must_use]
    pub fn round_trip(&self, cfg: SimConfig, value: usize) -> Option<usize> {
        self.try_round_trip(cfg, value)
            .expect("channel round completes")
    }

    /// Fallible [`CovertChannel::round_trip`]: a round whose machine
    /// errors (deadlock under fault injection, timeout under heavy
    /// noise) surfaces the structured [`SimError`] instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// The [`SimError`] of the failed run.
    ///
    /// # Panics
    ///
    /// Panics if the round's program fails to assemble — a harness
    /// bug, not a runtime condition.
    pub fn try_round_trip(&self, cfg: SimConfig, value: usize) -> Result<Option<usize>, SimError> {
        Ok(self.round_trip_grid(&[(cfg, value)], 1)?.remove(0))
    }

    /// The compiled send+receive round for `value`.
    fn round_program(&self, value: usize) -> Program {
        let mut a = Asm::new();
        self.emit_send(&mut a, value);
        self.emit_receive(&mut a);
        a.halt();
        a.assemble().expect("channel program assembles")
    }

    /// Runs a whole grid of `(config, value)` rounds as fleet trials:
    /// each value's program is assembled once and shared, machines are
    /// recycled between rounds, and rounds steal work across `threads`
    /// threads (0 = process default). Decoded symbols come back in job
    /// order, independent of the thread count.
    ///
    /// # Errors
    ///
    /// The first (lowest-index) round whose machine fails outright.
    ///
    /// # Panics
    ///
    /// Panics if a program fails to assemble, or if a round panicked —
    /// both harness bugs, resurfaced after sibling rounds completed.
    pub fn round_trip_grid(
        &self,
        jobs: &[(SimConfig, usize)],
        threads: usize,
    ) -> Result<Vec<Option<usize>>, SimError> {
        let mut progs: HashMap<usize, Arc<Program>> = HashMap::new();
        let specs: Vec<MemberSpec> = jobs
            .iter()
            .map(|&(cfg, value)| {
                let prog = progs
                    .entry(value)
                    .or_insert_with(|| Arc::new(self.round_program(value)));
                MemberSpec::new(cfg, Arc::clone(prog)).with_max_cycles(ROUND_MAX_CYCLES)
            })
            .collect();
        let ch = *self;
        fleet::trial_grid(&specs, threads, move |_, m, _| ch.decode(m))
            .into_iter()
            .map(|r| r.map_err(MemberError::unwrap_sim))
            .collect()
    }

    /// Repetition-coded round trip: runs `redundancy` independent
    /// rounds — each under a distinct noise seed, so every round sees
    /// a fresh interference pattern — and majority-votes the decodes.
    /// Redundancy 1 is exactly one noisy round (the unhardened
    /// baseline under a varying environment). The rounds run as one
    /// fleet grid (shared program, recycled machines, all cores).
    ///
    /// # Errors
    ///
    /// The first round whose machine fails outright.
    pub fn round_trip_vote(
        &self,
        cfg: SimConfig,
        value: usize,
        redundancy: usize,
    ) -> Result<Option<usize>, SimError> {
        let jobs: Vec<(SimConfig, usize)> = (0..redundancy.max(1) as u64)
            .map(|r| {
                let mut c = cfg;
                c.noise.seed = cfg.noise.seed.wrapping_add(r.wrapping_mul(0x9e37_79b9));
                (c, value)
            })
            .collect();
        let votes = self.round_trip_grid(&jobs, 0)?;
        Ok(majority_vote(&votes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_channel_round_trips() {
        let ch = CovertChannel {
            base: 0x4_0000,
            symbols: 64,
            stride: 64,
            result_base: 0x800,
        };
        for value in [0usize, 1, 13, 42, 63] {
            assert_eq!(ch.round_trip(SimConfig::default(), value), Some(value));
        }
    }

    #[test]
    fn noisy_round_trips_recover_via_repetition() {
        use pandora_sim::NoiseConfig;
        let ch = CovertChannel {
            base: 0x4_0000,
            symbols: 16,
            stride: 64,
            result_base: 0x800,
        };
        // Heavy interference over a 64 KiB window spanning the
        // channel's line array, plus a coarse, jittery timer — the
        // environment a real receiver faces.
        let cfg = SimConfig {
            noise: NoiseConfig::at_intensity(60, 17).with_window(0x4_0000, 0x5_0000),
            ..SimConfig::default()
        };
        let mut naive_errors = 0;
        for (vi, value) in [1usize, 6, 11, 14, 3, 9, 12, 5].into_iter().enumerate() {
            let mut c = cfg;
            c.noise.seed = cfg.noise.seed.wrapping_add(vi as u64 * 0xabcd);
            if ch.try_round_trip(c, value).unwrap() != Some(value) {
                naive_errors += 1;
            }
            assert_eq!(
                ch.round_trip_vote(c, value, 7).unwrap(),
                Some(value),
                "repetition coding must survive intensity-60 noise"
            );
        }
        assert!(
            naive_errors > 0,
            "the single-shot receiver must measurably degrade under this noise"
        );
    }

    #[test]
    fn capacity_matches_symbol_count() {
        let ch = CovertChannel::byte_channel(0x4_0000, 0x800);
        assert!((ch.capacity_bits() - 8.0).abs() < 1e-9);
        assert_eq!(ch.symbols, 256);
    }

    #[test]
    #[should_panic(expected = "symbol out of range")]
    fn send_rejects_bad_symbol() {
        let ch = CovertChannel::byte_channel(0x4_0000, 0x800);
        let mut a = Asm::new();
        ch.emit_send(&mut a, 256);
    }
}
