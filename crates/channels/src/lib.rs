#![warn(missing_docs)]

//! # pandora-channels
//!
//! Receiver infrastructure for the Pandora reproduction of *"Opening
//! Pandora's Box"* (ISCA 2021): the cache side of every attack in the
//! workspace.
//!
//! * [`prime_probe`] — eviction-set construction, timed-probe code
//!   generation (real receiver programs running on the simulator), and
//!   the idealized residency oracle the paper's leakage model assumes.
//! * [`covert`] — a complete cache covert channel (send a symbol by
//!   touching a line, receive by timing probes), the final hop of both
//!   proofs of concept.
//! * [`stats`] — Welch's t distinguishability, thresholds, and the
//!   histogram shape of Figure 6.
//! * [`retry`] — bounded-retry calibration ([`RetryPolicy`]): noisy
//!   rounds are retried with more trials until the timing populations
//!   separate, and failures surface as structured [`RetryError`]s.
//! * [`adaptive`] — noise-hardened receiver machinery: SNR /
//!   bit-error-rate reporting ([`ChannelQuality`],
//!   [`BitErrorCounter`]), repetition decoding ([`majority_vote`]),
//!   and drift-detecting threshold re-calibration
//!   ([`AdaptiveReceiver`]).

pub mod adaptive;
pub mod covert;
pub mod evict_time;
pub mod prime_probe;
pub mod retry;
pub mod stats;

pub use adaptive::{majority_vote, AdaptiveReceiver, BitErrorCounter, ChannelQuality};
pub use covert::CovertChannel;
pub use evict_time::{calibrate_evict_margin, emit_evict, emit_timed_victim, evict_time_round};
pub use prime_probe::{
    calibrate_probe_threshold, emit_probe_lines, emit_prime, emit_timed_probe, fastest_index,
    hits_below, probe_calibration_grid, probe_calibration_round, probe_oracle, read_timings,
    try_read_timings, EvictionSet,
};
pub use retry::{Calibration, RetryError, RetryPolicy, RetryStop};
pub use stats::{midpoint_threshold, welch_t, Histogram, Summary};
