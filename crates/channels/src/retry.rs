//! Retry policies for noisy calibration and measurement rounds.
//!
//! Real attack campaigns run in noisy environments: co-tenant cache
//! pressure blurs the hit/miss separation, and a disturbed machine can
//! even fail its run outright (the fault-injection harness in
//! `pandora-sim` models both). A [`RetryPolicy`] turns one-shot
//! calibration into a bounded retry loop: each attempt adds
//! [`RetryPolicy::backoff_trials`] trials (more samples drown
//! independent noise), an attempt is accepted only once Welch's t
//! clears [`RetryPolicy::min_t`], and after
//! [`RetryPolicy::max_attempts`] the caller gets a structured
//! [`RetryError`] carrying the best attempt seen — partial results, not
//! a panic.

use std::error::Error;
use std::fmt;
use std::time::Instant;

use pandora_sim::SimError;

use crate::stats::{midpoint_threshold, welch_t, Summary};

/// Bounded-retry configuration for calibration and attack rounds.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RetryPolicy {
    /// Attempts before giving up (values below 1 behave as 1).
    pub max_attempts: u32,
    /// Extra trials added per retry (backoff measured in samples, not
    /// wall time — more samples is what actually fights noise here).
    pub backoff_trials: usize,
    /// Minimum Welch's t between the two timing populations for a
    /// calibration attempt to be accepted; also the re-calibration
    /// trigger ([`RetryPolicy::needs_recalibration`]).
    pub min_t: f64,
    /// Seed for deterministic backoff jitter; `0` disables jitter (the
    /// default, preserving the exact legacy trial sequence). With a
    /// nonzero seed, each retry's extra-trial count is perturbed by a
    /// seeded hash of the attempt index (see
    /// [`RetryPolicy::trials_for_attempt`]), so parallel experiments
    /// sharing one policy stop re-running identically sized rounds in
    /// lockstep. Same seed, same jitter — retried runs stay
    /// reproducible.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_trials: 16,
            min_t: 5.0,
            jitter_seed: 0,
        }
    }
}

/// Why a retried operation ultimately failed.
#[derive(Clone, PartialEq, Debug)]
pub enum RetryError {
    /// Every attempt's timing populations stayed closer than `min_t`.
    Indistinguishable {
        /// Attempts made.
        attempts: u32,
        /// The best Welch's t any attempt achieved.
        best_t: f64,
        /// The bar it had to clear.
        min_t: f64,
    },
    /// Every attempt failed with a simulator error (the last is kept).
    Sim {
        /// Attempts made.
        attempts: u32,
        /// The final attempt's error.
        last: SimError,
    },
    /// The caller's deadline expired before any attempt succeeded
    /// (see [`RetryPolicy::retry_within`]).
    DeadlineExceeded {
        /// Attempts completed before the deadline fired.
        attempts: u32,
        /// The last attempt's error, if at least one attempt ran.
        last: Option<SimError>,
    },
}

impl fmt::Display for RetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetryError::Indistinguishable {
                attempts,
                best_t,
                min_t,
            } => write!(
                f,
                "timing populations indistinguishable after {attempts} \
                 attempts (best Welch's t {best_t:.2}, needed {min_t:.2})"
            ),
            RetryError::Sim { attempts, last } => {
                write!(f, "all {attempts} attempts failed; last error: {last}")
            }
            RetryError::DeadlineExceeded { attempts, last } => {
                write!(f, "deadline exceeded after {attempts} attempt(s)")?;
                if let Some(last) = last {
                    write!(f, "; last error: {last}")?;
                }
                Ok(())
            }
        }
    }
}

/// Why a generic bounded-retry loop ([`RetryPolicy::retry_generic`])
/// stopped without a success.
#[derive(Clone, PartialEq, Debug)]
pub enum RetryStop<E> {
    /// The attempt budget ran out; the last error is kept.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The final attempt's error.
        last: E,
    },
    /// The deadline passed between attempts.
    DeadlineExceeded {
        /// Attempts completed before the deadline fired.
        attempts: u32,
        /// The last attempt's error, if at least one attempt ran.
        last: Option<E>,
    },
}

impl Error for RetryError {}

/// An accepted calibration: the threshold separating the two timing
/// populations and the statistics that justified it.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Calibration {
    /// Midpoint threshold between the two population means; a sample
    /// below it classifies as "fast".
    pub threshold: u64,
    /// Welch's t of slow vs fast (positive when separated correctly).
    pub t: f64,
    /// Fast-population summary.
    pub fast: Summary,
    /// Slow-population summary.
    pub slow: Summary,
    /// Trials per population in the accepted attempt.
    pub trials: usize,
    /// 1-based attempt number that was accepted.
    pub attempts: u32,
}

impl RetryPolicy {
    /// This policy with deterministic backoff jitter from `seed`
    /// (`0` turns jitter back off).
    #[must_use]
    pub fn with_jitter(self, seed: u64) -> RetryPolicy {
        RetryPolicy {
            jitter_seed: seed,
            ..self
        }
    }

    /// The per-population trial count for a 0-based `attempt`: the base
    /// count plus one [`RetryPolicy::backoff_trials`] step per retry,
    /// plus — under a nonzero [`RetryPolicy::jitter_seed`] — a seeded
    /// per-attempt jitter of up to `backoff_trials - 1` extra trials.
    /// Attempt 0 is never jittered (the first round must match the
    /// un-jittered policy byte for byte), and because the jitter stays
    /// strictly below one backoff step the sequence remains strictly
    /// increasing.
    #[must_use]
    pub fn trials_for_attempt(&self, base_trials: usize, attempt: u32) -> usize {
        let base = base_trials + attempt as usize * self.backoff_trials;
        if self.jitter_seed == 0 || attempt == 0 || self.backoff_trials == 0 {
            return base;
        }
        let roll = splitmix64(self.jitter_seed ^ (u64::from(attempt) << 32));
        base + (roll % self.backoff_trials as u64) as usize
    }

    /// Whether an observed separation has degraded enough that the
    /// caller should re-run calibration.
    #[must_use]
    pub fn needs_recalibration(&self, t: f64) -> bool {
        t.abs() < self.min_t
    }

    /// Runs `round` (given a trial count and 0-based attempt index,
    /// returning `(fast, slow)` timing samples) until an attempt's
    /// Welch's t clears [`RetryPolicy::min_t`].
    ///
    /// # Errors
    ///
    /// [`RetryError::Indistinguishable`] if no attempt separated the
    /// populations, [`RetryError::Sim`] if every attempt's round
    /// failed outright.
    pub fn calibrate(
        &self,
        base_trials: usize,
        mut round: impl FnMut(usize, u32) -> Result<(Vec<u64>, Vec<u64>), SimError>,
    ) -> Result<Calibration, RetryError> {
        let attempts = self.max_attempts.max(1);
        let mut best: Option<Calibration> = None;
        let mut last_sim: Option<SimError> = None;
        for attempt in 0..attempts {
            let trials = self.trials_for_attempt(base_trials, attempt);
            let (fast, slow) = match round(trials, attempt) {
                Ok(samples) => samples,
                Err(e) => {
                    last_sim = Some(e);
                    continue;
                }
            };
            let cal = Calibration {
                threshold: midpoint_threshold(&fast, &slow),
                t: welch_t(&slow, &fast),
                fast: Summary::of(&fast),
                slow: Summary::of(&slow),
                trials,
                attempts: attempt + 1,
            };
            if cal.t >= self.min_t {
                return Ok(cal);
            }
            if best.is_none_or(|b| cal.t > b.t) {
                best = Some(cal);
            }
        }
        match (best, last_sim) {
            (Some(b), _) => Err(RetryError::Indistinguishable {
                attempts,
                best_t: b.t,
                min_t: self.min_t,
            }),
            (None, Some(last)) => Err(RetryError::Sim { attempts, last }),
            (None, None) => unreachable!("at least one attempt ran"),
        }
    }

    /// The generic bounded-retry core: retries an arbitrary fallible
    /// operation (given the 0-based attempt index) until it succeeds,
    /// the attempt budget runs out, or the optional `deadline` passes.
    ///
    /// The deadline is checked *between* attempts (an in-flight attempt
    /// is never interrupted — callers needing hard preemption run the
    /// whole loop under the orchestrator's job deadline instead), so at
    /// most one attempt completes after the deadline instant. Values
    /// of `max_attempts` below 1 behave as 1: the operation always gets
    /// at least one attempt, unless the deadline has already passed
    /// before the first one.
    ///
    /// # Errors
    ///
    /// [`RetryStop::Exhausted`] with the last error when the budget
    /// runs out; [`RetryStop::DeadlineExceeded`] when the deadline
    /// fires first (carrying the last error seen, if any).
    pub fn retry_generic<T, E>(
        &self,
        deadline: Option<Instant>,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, RetryStop<E>> {
        let attempts = self.max_attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(RetryStop::DeadlineExceeded {
                    attempts: attempt,
                    last,
                });
            }
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => last = Some(e),
            }
        }
        Err(RetryStop::Exhausted {
            attempts,
            last: last.expect("loop ran at least once"),
        })
    }

    /// Retries an arbitrary fallible operation (given the 0-based
    /// attempt index) until it succeeds.
    ///
    /// # Errors
    ///
    /// [`RetryError::Sim`] with the last error if every attempt failed.
    pub fn retry<T>(
        &self,
        op: impl FnMut(u32) -> Result<T, SimError>,
    ) -> Result<T, RetryError> {
        self.retry_generic(None, op).map_err(|stop| match stop {
            RetryStop::Exhausted { attempts, last } => RetryError::Sim { attempts, last },
            RetryStop::DeadlineExceeded { .. } => {
                unreachable!("no deadline was supplied")
            }
        })
    }

    /// Batch retry that re-dispatches **failed members only**: the
    /// retry shape for fleet sweeps, where attempt 0 runs the whole
    /// member grid and each later attempt re-runs just the members
    /// that failed — succeeded members keep their first result, so a
    /// single wedged trial no longer forces a whole batch re-run.
    ///
    /// `batch` receives the still-failing member indices (strictly
    /// increasing) and the 0-based attempt number, and must return
    /// exactly one result per requested index, in the same order.
    ///
    /// # Errors
    ///
    /// [`RetryError::Sim`] carrying the lowest-index still-failing
    /// member's last error once the attempt budget is spent.
    ///
    /// # Panics
    ///
    /// Panics if `batch` returns a different number of results than
    /// indices it was given — a harness bug.
    pub fn retry_failed<T>(
        &self,
        count: usize,
        mut batch: impl FnMut(&[usize], u32) -> Vec<Result<T, SimError>>,
    ) -> Result<Vec<T>, RetryError> {
        let attempts = self.max_attempts.max(1);
        let mut results: Vec<Option<T>> = (0..count).map(|_| None).collect();
        let mut pending: Vec<usize> = (0..count).collect();
        let mut first_err: Option<SimError> = None;
        for attempt in 0..attempts {
            if pending.is_empty() {
                break;
            }
            let out = batch(&pending, attempt);
            assert_eq!(
                out.len(),
                pending.len(),
                "batch must return one result per requested member"
            );
            let mut still = Vec::new();
            first_err = None;
            for (idx, r) in pending.iter().copied().zip(out) {
                match r {
                    Ok(v) => results[idx] = Some(v),
                    Err(e) => {
                        if still.is_empty() {
                            first_err = Some(e);
                        }
                        still.push(idx);
                    }
                }
            }
            pending = still;
        }
        if pending.is_empty() {
            Ok(results
                .into_iter()
                .map(|r| r.expect("every member resolved"))
                .collect())
        } else {
            Err(RetryError::Sim {
                attempts,
                last: first_err.expect("a pending member has a recorded error"),
            })
        }
    }

    /// Deadline-aware [`RetryPolicy::retry`]: gives up as soon as
    /// `deadline` has passed between attempts, even with budget left —
    /// the shape long-running attack campaigns need so a noisy phase
    /// cannot eat the whole experiment's time box.
    ///
    /// # Errors
    ///
    /// [`RetryError::Sim`] if the attempt budget ran out first;
    /// [`RetryError::DeadlineExceeded`] if the deadline fired mid-retry
    /// (carrying the last simulator error seen, if any attempt ran).
    pub fn retry_within<T>(
        &self,
        deadline: Instant,
        op: impl FnMut(u32) -> Result<T, SimError>,
    ) -> Result<T, RetryError> {
        self.retry_generic(Some(deadline), op)
            .map_err(|stop| match stop {
                RetryStop::Exhausted { attempts, last } => RetryError::Sim { attempts, last },
                RetryStop::DeadlineExceeded { attempts, last } => {
                    RetryError::DeadlineExceeded { attempts, last }
                }
            })
    }
}

/// SplitMix64 finalizer — the workspace's stock seeded hash (the
/// simulator's fault plans and the runner's chaos plans use the same
/// mix), here decorrelating jitter across attempt indices.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_slow(sep: u64, trials: usize) -> (Vec<u64>, Vec<u64>) {
        let fast: Vec<u64> = (0..trials as u64).map(|i| 100 + i % 3).collect();
        let slow: Vec<u64> = (0..trials as u64).map(|i| 100 + sep + i % 3).collect();
        (fast, slow)
    }

    #[test]
    fn accepts_separated_populations_first_try() {
        let p = RetryPolicy::default();
        let cal = p.calibrate(20, |trials, _| Ok(fast_slow(100, trials))).unwrap();
        assert_eq!(cal.attempts, 1);
        assert_eq!(cal.trials, 20);
        assert!(cal.t > p.min_t);
        assert!(cal.threshold > 102 && cal.threshold < 200);
    }

    #[test]
    fn retries_with_backoff_then_reports_best_attempt() {
        let p = RetryPolicy {
            max_attempts: 3,
            backoff_trials: 10,
            min_t: 5.0,
            jitter_seed: 0,
        };
        let mut seen_trials = Vec::new();
        let err = p
            .calibrate(8, |trials, _| {
                seen_trials.push(trials);
                // Identical populations: never distinguishable.
                Ok(fast_slow(0, trials))
            })
            .unwrap_err();
        assert_eq!(seen_trials, vec![8, 18, 28], "backoff adds trials");
        match err {
            RetryError::Indistinguishable {
                attempts, best_t, ..
            } => {
                assert_eq!(attempts, 3);
                assert!(best_t.abs() < 5.0);
            }
            other => panic!("expected Indistinguishable, got {other}"),
        }
    }

    #[test]
    fn noisy_first_round_recovers_on_retry() {
        let p = RetryPolicy::default();
        let cal = p
            .calibrate(20, |trials, attempt| {
                // Round 0 is jammed (overlapping populations); later
                // rounds are clean.
                Ok(fast_slow(if attempt == 0 { 0 } else { 100 }, trials))
            })
            .unwrap();
        assert_eq!(cal.attempts, 2);
    }

    #[test]
    fn sim_errors_are_retried_and_surfaced() {
        let p = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let v = p
            .retry(|attempt| {
                if attempt == 0 {
                    Err(SimError::Timeout { cycles: 10 })
                } else {
                    Ok(attempt)
                }
            })
            .unwrap();
        assert_eq!(v, 1);

        let err = p
            .retry::<()>(|_| Err(SimError::Timeout { cycles: 10 }))
            .unwrap_err();
        assert_eq!(
            err,
            RetryError::Sim {
                attempts: 2,
                last: SimError::Timeout { cycles: 10 }
            }
        );
    }

    #[test]
    fn zero_max_attempts_still_runs_once() {
        // A policy with max_attempts: 0 is clamped to one attempt — a
        // misconfigured caller gets one honest try, not a vacuous error.
        let p = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        let mut calls = 0u32;
        let v = p
            .retry(|attempt| {
                calls += 1;
                Ok::<u32, SimError>(attempt)
            })
            .unwrap();
        assert_eq!((v, calls), (0, 1));

        let mut calls = 0u32;
        let err = p
            .retry::<()>(|_| {
                calls += 1;
                Err(SimError::Timeout { cycles: 1 })
            })
            .unwrap_err();
        assert_eq!(calls, 1);
        assert_eq!(
            err,
            RetryError::Sim {
                attempts: 1,
                last: SimError::Timeout { cycles: 1 }
            }
        );
    }

    #[test]
    fn deadline_already_passed_stops_before_first_attempt() {
        let p = RetryPolicy::default();
        let err = p
            .retry_within::<()>(Instant::now(), |_| {
                panic!("the operation must not run past a spent deadline")
            })
            .unwrap_err();
        assert_eq!(
            err,
            RetryError::DeadlineExceeded {
                attempts: 0,
                last: None
            }
        );
    }

    #[test]
    fn deadline_exceeded_mid_retry_keeps_last_error() {
        let p = RetryPolicy {
            max_attempts: 5,
            ..RetryPolicy::default()
        };
        let deadline = Instant::now() + std::time::Duration::from_millis(5);
        let err = p
            .retry_within::<()>(deadline, |attempt| {
                assert_eq!(attempt, 0, "only the pre-deadline attempt runs");
                // Burn through the deadline inside the first attempt.
                while Instant::now() < deadline {
                    std::hint::spin_loop();
                }
                Err(SimError::Timeout { cycles: 99 })
            })
            .unwrap_err();
        assert_eq!(
            err,
            RetryError::DeadlineExceeded {
                attempts: 1,
                last: Some(SimError::Timeout { cycles: 99 })
            }
        );
    }

    #[test]
    fn retry_generic_works_over_non_sim_errors() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let err = p
            .retry_generic::<(), &str>(None, |_| Err("custom failure"))
            .unwrap_err();
        assert_eq!(
            err,
            RetryStop::Exhausted {
                attempts: 3,
                last: "custom failure"
            }
        );
    }

    #[test]
    fn jitter_is_off_by_default_and_zero_seed_matches_legacy_sequence() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff_trials: 10,
            ..RetryPolicy::default()
        };
        let trials: Vec<usize> = (0..4).map(|a| p.trials_for_attempt(8, a)).collect();
        assert_eq!(trials, vec![8, 18, 28, 38], "no seed, no jitter");
        // with_jitter(0) is explicitly "off" too.
        let off = p.with_jitter(7).with_jitter(0);
        assert_eq!(off, p);
    }

    #[test]
    fn jittered_sequence_is_pinned_monotone_and_seed_deterministic() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff_trials: 10,
            ..RetryPolicy::default()
        }
        .with_jitter(0xE16);
        let trials: Vec<usize> = (0..5).map(|a| p.trials_for_attempt(8, a)).collect();
        // Pinned: splitmix64 output for this seed must never drift —
        // archived experiment transcripts depend on it.
        assert_eq!(trials, vec![8, 27, 31, 43, 56]);
        // Attempt 0 is exactly the un-jittered count.
        assert_eq!(trials[0], 8);
        // Jitter stays below one backoff step: strictly increasing, and
        // never two full steps ahead of the legacy sequence.
        for (a, w) in trials.windows(2).enumerate() {
            assert!(w[0] < w[1], "attempt {a}: {trials:?} not increasing");
        }
        for (a, &t) in trials.iter().enumerate() {
            let legacy = 8 + a * 10;
            assert!(t >= legacy && t < legacy + 10, "attempt {a}: {t} vs legacy {legacy}");
        }
        // Same seed, same sequence; different seed, different sequence.
        let again: Vec<usize> = (0..5).map(|a| p.trials_for_attempt(8, a)).collect();
        assert_eq!(trials, again);
        let other: Vec<usize> =
            (0..5).map(|a| p.with_jitter(0xE17).trials_for_attempt(8, a)).collect();
        assert_ne!(trials, other);
    }

    #[test]
    fn jitter_with_zero_backoff_is_inert() {
        let p = RetryPolicy {
            backoff_trials: 0,
            ..RetryPolicy::default()
        }
        .with_jitter(99);
        assert_eq!(
            (0..3).map(|a| p.trials_for_attempt(20, a)).collect::<Vec<_>>(),
            vec![20, 20, 20]
        );
    }

    #[test]
    fn retry_failed_redispatches_only_failed_members() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let mut rounds: Vec<Vec<usize>> = Vec::new();
        // Members 1 and 3 fail on attempt 0; member 3 fails again on
        // attempt 1; everything resolves by attempt 2.
        let out = p
            .retry_failed(5, |pending, attempt| {
                rounds.push(pending.to_vec());
                pending
                    .iter()
                    .map(|&i| {
                        let fails = match attempt {
                            0 => i == 1 || i == 3,
                            1 => i == 3,
                            _ => false,
                        };
                        if fails {
                            Err(SimError::Timeout { cycles: i as u64 })
                        } else {
                            Ok(100 + i)
                        }
                    })
                    .collect()
            })
            .unwrap();
        assert_eq!(out, vec![100, 101, 102, 103, 104]);
        assert_eq!(
            rounds,
            vec![vec![0, 1, 2, 3, 4], vec![1, 3], vec![3]],
            "later attempts must re-dispatch only the failed members"
        );
    }

    #[test]
    fn retry_failed_surfaces_lowest_index_error_after_budget() {
        let p = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let err = p
            .retry_failed::<u32>(3, |pending, _| {
                pending
                    .iter()
                    .map(|&i| {
                        if i == 0 {
                            Ok(7)
                        } else {
                            Err(SimError::Timeout { cycles: i as u64 })
                        }
                    })
                    .collect()
            })
            .unwrap_err();
        assert_eq!(
            err,
            RetryError::Sim {
                attempts: 2,
                last: SimError::Timeout { cycles: 1 }
            }
        );
        // Empty batches are vacuously successful.
        assert_eq!(
            p.retry_failed::<u32>(0, |_, _| Vec::new()).unwrap(),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn recalibration_trigger_uses_min_t() {
        let p = RetryPolicy::default();
        assert!(p.needs_recalibration(2.0));
        assert!(p.needs_recalibration(-4.9));
        assert!(!p.needs_recalibration(5.1));
        assert!(!p.needs_recalibration(-8.0));
    }
}
