//! Retry policies for noisy calibration and measurement rounds.
//!
//! Real attack campaigns run in noisy environments: co-tenant cache
//! pressure blurs the hit/miss separation, and a disturbed machine can
//! even fail its run outright (the fault-injection harness in
//! `pandora-sim` models both). A [`RetryPolicy`] turns one-shot
//! calibration into a bounded retry loop: each attempt adds
//! [`RetryPolicy::backoff_trials`] trials (more samples drown
//! independent noise), an attempt is accepted only once Welch's t
//! clears [`RetryPolicy::min_t`], and after
//! [`RetryPolicy::max_attempts`] the caller gets a structured
//! [`RetryError`] carrying the best attempt seen — partial results, not
//! a panic.

use std::error::Error;
use std::fmt;

use pandora_sim::SimError;

use crate::stats::{midpoint_threshold, welch_t, Summary};

/// Bounded-retry configuration for calibration and attack rounds.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RetryPolicy {
    /// Attempts before giving up (values below 1 behave as 1).
    pub max_attempts: u32,
    /// Extra trials added per retry (backoff measured in samples, not
    /// wall time — more samples is what actually fights noise here).
    pub backoff_trials: usize,
    /// Minimum Welch's t between the two timing populations for a
    /// calibration attempt to be accepted; also the re-calibration
    /// trigger ([`RetryPolicy::needs_recalibration`]).
    pub min_t: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_trials: 16,
            min_t: 5.0,
        }
    }
}

/// Why a retried operation ultimately failed.
#[derive(Clone, PartialEq, Debug)]
pub enum RetryError {
    /// Every attempt's timing populations stayed closer than `min_t`.
    Indistinguishable {
        /// Attempts made.
        attempts: u32,
        /// The best Welch's t any attempt achieved.
        best_t: f64,
        /// The bar it had to clear.
        min_t: f64,
    },
    /// Every attempt failed with a simulator error (the last is kept).
    Sim {
        /// Attempts made.
        attempts: u32,
        /// The final attempt's error.
        last: SimError,
    },
}

impl fmt::Display for RetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetryError::Indistinguishable {
                attempts,
                best_t,
                min_t,
            } => write!(
                f,
                "timing populations indistinguishable after {attempts} \
                 attempts (best Welch's t {best_t:.2}, needed {min_t:.2})"
            ),
            RetryError::Sim { attempts, last } => {
                write!(f, "all {attempts} attempts failed; last error: {last}")
            }
        }
    }
}

impl Error for RetryError {}

/// An accepted calibration: the threshold separating the two timing
/// populations and the statistics that justified it.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Calibration {
    /// Midpoint threshold between the two population means; a sample
    /// below it classifies as "fast".
    pub threshold: u64,
    /// Welch's t of slow vs fast (positive when separated correctly).
    pub t: f64,
    /// Fast-population summary.
    pub fast: Summary,
    /// Slow-population summary.
    pub slow: Summary,
    /// Trials per population in the accepted attempt.
    pub trials: usize,
    /// 1-based attempt number that was accepted.
    pub attempts: u32,
}

impl RetryPolicy {
    /// The per-population trial count for a 0-based `attempt`.
    #[must_use]
    pub fn trials_for_attempt(&self, base_trials: usize, attempt: u32) -> usize {
        base_trials + attempt as usize * self.backoff_trials
    }

    /// Whether an observed separation has degraded enough that the
    /// caller should re-run calibration.
    #[must_use]
    pub fn needs_recalibration(&self, t: f64) -> bool {
        t.abs() < self.min_t
    }

    /// Runs `round` (given a trial count and 0-based attempt index,
    /// returning `(fast, slow)` timing samples) until an attempt's
    /// Welch's t clears [`RetryPolicy::min_t`].
    ///
    /// # Errors
    ///
    /// [`RetryError::Indistinguishable`] if no attempt separated the
    /// populations, [`RetryError::Sim`] if every attempt's round
    /// failed outright.
    pub fn calibrate(
        &self,
        base_trials: usize,
        mut round: impl FnMut(usize, u32) -> Result<(Vec<u64>, Vec<u64>), SimError>,
    ) -> Result<Calibration, RetryError> {
        let attempts = self.max_attempts.max(1);
        let mut best: Option<Calibration> = None;
        let mut last_sim: Option<SimError> = None;
        for attempt in 0..attempts {
            let trials = self.trials_for_attempt(base_trials, attempt);
            let (fast, slow) = match round(trials, attempt) {
                Ok(samples) => samples,
                Err(e) => {
                    last_sim = Some(e);
                    continue;
                }
            };
            let cal = Calibration {
                threshold: midpoint_threshold(&fast, &slow),
                t: welch_t(&slow, &fast),
                fast: Summary::of(&fast),
                slow: Summary::of(&slow),
                trials,
                attempts: attempt + 1,
            };
            if cal.t >= self.min_t {
                return Ok(cal);
            }
            if best.is_none_or(|b| cal.t > b.t) {
                best = Some(cal);
            }
        }
        match (best, last_sim) {
            (Some(b), _) => Err(RetryError::Indistinguishable {
                attempts,
                best_t: b.t,
                min_t: self.min_t,
            }),
            (None, Some(last)) => Err(RetryError::Sim { attempts, last }),
            (None, None) => unreachable!("at least one attempt ran"),
        }
    }

    /// Retries an arbitrary fallible operation (given the 0-based
    /// attempt index) until it succeeds.
    ///
    /// # Errors
    ///
    /// [`RetryError::Sim`] with the last error if every attempt failed.
    pub fn retry<T>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, SimError>,
    ) -> Result<T, RetryError> {
        let attempts = self.max_attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => last = Some(e),
            }
        }
        Err(RetryError::Sim {
            attempts,
            last: last.expect("loop ran at least once"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_slow(sep: u64, trials: usize) -> (Vec<u64>, Vec<u64>) {
        let fast: Vec<u64> = (0..trials as u64).map(|i| 100 + i % 3).collect();
        let slow: Vec<u64> = (0..trials as u64).map(|i| 100 + sep + i % 3).collect();
        (fast, slow)
    }

    #[test]
    fn accepts_separated_populations_first_try() {
        let p = RetryPolicy::default();
        let cal = p.calibrate(20, |trials, _| Ok(fast_slow(100, trials))).unwrap();
        assert_eq!(cal.attempts, 1);
        assert_eq!(cal.trials, 20);
        assert!(cal.t > p.min_t);
        assert!(cal.threshold > 102 && cal.threshold < 200);
    }

    #[test]
    fn retries_with_backoff_then_reports_best_attempt() {
        let p = RetryPolicy {
            max_attempts: 3,
            backoff_trials: 10,
            min_t: 5.0,
        };
        let mut seen_trials = Vec::new();
        let err = p
            .calibrate(8, |trials, _| {
                seen_trials.push(trials);
                // Identical populations: never distinguishable.
                Ok(fast_slow(0, trials))
            })
            .unwrap_err();
        assert_eq!(seen_trials, vec![8, 18, 28], "backoff adds trials");
        match err {
            RetryError::Indistinguishable {
                attempts, best_t, ..
            } => {
                assert_eq!(attempts, 3);
                assert!(best_t.abs() < 5.0);
            }
            other => panic!("expected Indistinguishable, got {other}"),
        }
    }

    #[test]
    fn noisy_first_round_recovers_on_retry() {
        let p = RetryPolicy::default();
        let cal = p
            .calibrate(20, |trials, attempt| {
                // Round 0 is jammed (overlapping populations); later
                // rounds are clean.
                Ok(fast_slow(if attempt == 0 { 0 } else { 100 }, trials))
            })
            .unwrap();
        assert_eq!(cal.attempts, 2);
    }

    #[test]
    fn sim_errors_are_retried_and_surfaced() {
        let p = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let v = p
            .retry(|attempt| {
                if attempt == 0 {
                    Err(SimError::Timeout { cycles: 10 })
                } else {
                    Ok(attempt)
                }
            })
            .unwrap();
        assert_eq!(v, 1);

        let err = p
            .retry::<()>(|_| Err(SimError::Timeout { cycles: 10 }))
            .unwrap_err();
        assert_eq!(
            err,
            RetryError::Sim {
                attempts: 2,
                last: SimError::Timeout { cycles: 10 }
            }
        );
    }

    #[test]
    fn recalibration_trigger_uses_min_t() {
        let p = RetryPolicy::default();
        assert!(p.needs_recalibration(2.0));
        assert!(p.needs_recalibration(-4.9));
        assert!(!p.needs_recalibration(5.1));
        assert!(!p.needs_recalibration(-8.0));
    }
}
