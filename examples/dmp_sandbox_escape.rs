//! The paper's headline result (Fig 1, §V-B): a verified, memory-safe
//! sandbox program uses the 3-level indirect-memory prefetcher as a
//! universal read gadget to dump memory outside the sandbox.
//!
//! ```sh
//! cargo run --release --example dmp_sandbox_escape
//! ```

use pandora::attacks::UrgAttack;
use pandora::sandbox::verify;

fn main() {
    const SECRET_ADDR: u64 = 0x20_0000;
    let secret = b"kernel secret";

    let mut attack = UrgAttack::new(3);
    for (i, &b) in secret.iter().enumerate() {
        attack.plant_secret(SECRET_ADDR + i as u64, b);
    }

    // The attacker program is ordinary, *verified* sandbox code.
    verify(attack.program()).expect("the attack program is memory-safe by the verifier's rules");
    let (lo, hi) = attack.layout().region();
    println!("sandbox may architecturally touch [{lo:#x}, {hi:#x})");
    println!("the secret lives at {SECRET_ADDR:#x} — far outside\n");

    println!("dumping {} bytes through the prefetcher...", secret.len());
    let dumped = attack.dump(SECRET_ADDR, secret.len());
    let recovered: String = dumped.iter().map(|b| b.map_or('?', |v| v as char)).collect();
    println!("planted:   {:?}", String::from_utf8_lossy(secret));
    println!("recovered: {recovered:?}");
    assert_eq!(recovered.as_bytes(), secret, "URG must read exactly");

    println!("\nthe same program under a 2-level prefetcher leaks nothing:");
    let mut weak = UrgAttack::new(2);
    weak.plant_secret(SECRET_ADDR, secret[0]);
    println!("  2-level leak attempt: {:?}", weak.leak_byte(SECRET_ADDR));
}
