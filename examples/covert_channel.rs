//! A cache covert channel on the simulator: send bytes by touching
//! lines, receive them by timing probes — the final hop of both of the
//! paper's proofs of concept (§II), with the §IV-A3 capacity bound.
//!
//! ```sh
//! cargo run --release --example covert_channel
//! ```

use pandora::channels::CovertChannel;
use pandora::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ch = CovertChannel::byte_channel(0x4_0000, 0x800);
    println!(
        "one-shot channel: {} symbols, capacity <= {:.1} bits/round\n",
        ch.symbols,
        ch.capacity_bits()
    );

    let message = b"uarch!";
    let mut recovered = Vec::new();
    let mut total_cycles = 0u64;
    for &byte in message {
        // Each round is a fresh machine: sender touches X[byte],
        // receiver times all 256 lines.
        let decoded = ch
            .round_trip(SimConfig::default(), byte as usize)
            .expect("round decodes");
        recovered.push(decoded as u8);
        total_cycles += 1; // per-round bookkeeping below uses cycles of one run
    }
    let _ = total_cycles;
    println!("sent:      {:?}", String::from_utf8_lossy(message));
    println!("received:  {:?}", String::from_utf8_lossy(&recovered));
    assert_eq!(&recovered, message);

    // Effective bandwidth estimate from one measured round.
    let mut a = pandora::isa::Asm::new();
    ch.emit_send(&mut a, 42);
    ch.emit_receive(&mut a);
    a.halt();
    let prog = a.assemble()?;
    let mut m = pandora::sim::Machine::new(SimConfig::default());
    m.load_program(&prog);
    let stats = m.run(20_000_000)?;
    println!(
        "\none round = {} cycles -> ~{:.1} bits / kilocycle",
        stats.cycles,
        8.0 * 1000.0 / stats.cycles as f64
    );
    Ok(())
}
