//! The cloud-setting receiver placement (§II-3): the victim core runs
//! the verified sandbox trigger; the *receiver runs on another core*
//! and observes the prefetcher's fills through the shared L2 — no
//! in-sandbox timer needed.
//!
//! ```sh
//! cargo run --release --example cross_core_receiver
//! ```

use pandora::isa::{Asm, Reg};
use pandora::sandbox::{compile, BpfAluOp, BpfProgram, BpfReg, Cmp, Inst, MapDef, SandboxLayout, Src};
use pandora::sim::{DuoMachine, Machine, OptConfig, SimConfig};

const SECRET_ADDR: u64 = 0x20_0000;
const SECRET: u8 = 0x6B;

fn r(i: u8) -> BpfReg {
    BpfReg(i)
}

/// The Fig 7a trigger loop only (the receiver lives on the other core).
fn trigger_program() -> BpfProgram {
    let mut p = BpfProgram::new(vec![
        MapDef::new("Z", 8, 16),
        MapDef::new("Y", 1, 64),
        MapDef::new("X", 64, 256),
    ]);
    p.push(Inst::MovImm { dst: r(1), imm: 0 });
    let head = p.insts.len();
    p.push(Inst::Lookup { dst: r(2), map: 0, idx: r(1) });
    let cont = 11;
    p.push(Inst::JmpIf { cmp: Cmp::Eq, a: r(2), b: Src::Imm(0), target: cont });
    p.push(Inst::LoadInd { dst: r(3), ptr: r(2) });
    p.push(Inst::Lookup { dst: r(4), map: 1, idx: r(3) });
    p.push(Inst::JmpIf { cmp: Cmp::Eq, a: r(4), b: Src::Imm(0), target: cont });
    p.push(Inst::LoadInd { dst: r(5), ptr: r(4) });
    p.push(Inst::Lookup { dst: r(6), map: 2, idx: r(5) });
    p.push(Inst::JmpIf { cmp: Cmp::Eq, a: r(6), b: Src::Imm(0), target: cont });
    p.push(Inst::LoadInd { dst: r(7), ptr: r(6) });
    p.push(Inst::MovReg { dst: r(0), src: r(7) });
    assert_eq!(p.insts.len(), cont);
    p.push(Inst::Alu { op: BpfAluOp::Add, dst: r(1), src: Src::Imm(1) });
    p.push(Inst::JmpIf { cmp: Cmp::Lt, a: r(1), b: Src::Imm(15), target: head });
    p.push(Inst::Exit);
    p
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = trigger_program();
    pandora::sandbox::verify(&prog).expect("trigger verifies");
    let layout = SandboxLayout::at(0x4_0000, &prog.maps);

    // Victim core: the sandboxed trigger under a 3-level IMP.
    let mut asm = Asm::new();
    compile(&mut asm, "t", &prog, &layout).expect("compiles");
    asm.halt();
    let mut victim = Machine::new(SimConfig::with_opts(OptConfig::with_dmp(3)));
    victim.load_program(&asm.assemble().expect("assembles"));
    victim.mem_mut().write_u8(SECRET_ADDR, SECRET)?;
    let (z, y) = (layout.map_base(0), layout.map_base(1));
    for i in 0..15u64 {
        victim.mem_mut().write_u64(z + 8 * i, 1 + i % 3)?;
    }
    victim.mem_mut().write_u64(z + 8 * 15, SECRET_ADDR - y)?;
    for j in 0..64u64 {
        victim.mem_mut().write_u8(y + j, (1 + j % 3) as u8)?;
    }

    // Receiver core: waits, then times every X line through its own
    // (cold) L1 — shared-L2 hits reveal the prefetcher's fill.
    let x_base = layout.map_base(2);
    let result = 0x100u64;
    let mut rx = Asm::new();
    rx.li(Reg::T6, 3000);
    rx.label("wait");
    rx.addi(Reg::T6, Reg::T6, -1);
    rx.bnez(Reg::T6, "wait");
    for k in 0..256u64 {
        let i = (k * 167) % 256;
        rx.fence();
        rx.rdcycle(Reg::T3);
        rx.ld(Reg::T4, Reg::ZERO, (x_base + i * 64) as i64);
        rx.fence();
        rx.rdcycle(Reg::T5);
        rx.sub(Reg::T5, Reg::T5, Reg::T3);
        rx.sd(Reg::T5, Reg::ZERO, (result + i * 8) as i64);
    }
    rx.halt();
    let mut receiver = Machine::new(SimConfig::default());
    receiver.load_program(&rx.assemble().expect("assembles"));

    let mut duo = DuoMachine::new(victim, receiver);
    duo.run(10_000_000).expect("both cores halt");

    let timings: Vec<u64> = (0..256)
        .map(|i| {
            duo.core_b()
                .mem()
                .read_u64(result + i * 8)
                .expect("receiver stored a timing for every probed line")
        })
        .collect();
    let hot: Vec<usize> = timings
        .iter()
        .enumerate()
        .filter(|&(_, &t)| t < 60)
        .map(|(i, _)| i)
        .collect();
    println!("receiver core saw hot X lines: {hot:?}");
    println!("training lines 1..=3 excluded; remaining candidate = the secret");
    let leaked: Vec<usize> = hot.into_iter().filter(|&i| !(1..=3).contains(&i)).collect();
    println!("leaked byte: {leaked:02x?} (planted {SECRET:#04x})");
    assert_eq!(leaked, vec![SECRET as usize]);
    println!("cross-core leak: SUCCESS — no timer ever ran inside the sandbox");
    Ok(())
}
