//! The paper's §V-A3 attack end to end: recover an AES-128 key from a
//! constant-time bitsliced implementation using nothing but request
//! timing, via silent stores and the amplification gadget.
//!
//! The demo windows each slice's guess search around the true value to
//! keep runtime interactive (the full attack is at most 8 × 65 536
//! experiments; see `cargo run --release -p pandora-bench --bin
//! e9_replay_recovery -- --full-slice` for an unwindowed slice).
//!
//! ```sh
//! cargo run --release --example silent_store_keyrecovery
//! ```

use pandora::attacks::BsaesAttack;

fn main() {
    let victim_key: [u8; 16] = *b"do not leak me!!";
    let attacker_key: [u8; 16] = *b"attacker's  key!";
    let victim_pt: [u8; 16] = *b"public plaintext";

    println!("victim encrypts {victim_pt:02x?} under a secret key;");
    println!("the attacker shares the worker's stack and measures timing.\n");

    let atk = BsaesAttack::new(victim_key, attacker_key, victim_pt, 0);
    println!("per-slice equality oracle (slice 0):");
    let truth = atk.true_slice_value();
    for guess in [truth, truth ^ 1, truth ^ 0xFF] {
        let t = atk.measure_guess(guess, None).cycles;
        let tag = if guess == truth { "  <- silent store" } else { "" };
        println!("  guess {guess:#06x}: {t} cycles{tag}");
    }

    println!("\nrecovering all eight 16-bit slices (windowed demo search)...");
    let recovered = atk.recover_key(
        |k| {
            let t = BsaesAttack::new(victim_key, attacker_key, victim_pt, k).true_slice_value();
            (0..17).map(|d| t.wrapping_sub(8).wrapping_add(d)).collect()
        },
        60,
    );

    match recovered {
        Some(key) => {
            println!("recovered key: {:?}", String::from_utf8_lossy(&key));
            assert_eq!(key, victim_key, "recovery must be exact");
            println!("key recovery: SUCCESS (slices -> final-SubBytes state -> round-10 key -> schedule inversion)");
        }
        None => println!("key recovery failed (no clear timing winner)"),
    }
}
