//! The sandbox's software memory-safety checks at work: the verifier
//! accepts the paper's Fig 7a program (null checks and all) and rejects
//! each unsafe variation — the architectural guarantee the prefetcher
//! then breaks microarchitecturally.
//!
//! ```sh
//! cargo run --example sandbox_verifier
//! ```

use pandora::sandbox::{verify, BpfAluOp, BpfProgram, BpfReg, Cmp, Inst, MapDef, Src};

fn r(i: u8) -> BpfReg {
    BpfReg(i)
}

fn base_program() -> BpfProgram {
    let mut p = BpfProgram::new(vec![MapDef::new("z", 8, 16)]);
    p.push(Inst::MovImm { dst: r(1), imm: 3 });
    p.push(Inst::Lookup {
        dst: r(2),
        map: 0,
        idx: r(1),
    });
    p.push(Inst::JmpIf {
        cmp: Cmp::Eq,
        a: r(2),
        b: Src::Imm(0),
        target: 5,
    });
    p.push(Inst::LoadInd {
        dst: r(3),
        ptr: r(2),
    });
    p.push(Inst::StoreInd {
        ptr: r(2),
        src: r(3),
    });
    p.push(Inst::Exit);
    p
}

fn main() {
    println!("well-formed lookup + null check + deref:");
    println!("  {:?}\n", verify(&base_program()).map(|_| "ACCEPTED"));

    // Variation 1: drop the null check.
    let mut no_check = BpfProgram::new(vec![MapDef::new("z", 8, 16)]);
    no_check.push(Inst::MovImm { dst: r(1), imm: 3 });
    no_check.push(Inst::Lookup {
        dst: r(2),
        map: 0,
        idx: r(1),
    });
    no_check.push(Inst::LoadInd {
        dst: r(3),
        ptr: r(2),
    });
    no_check.push(Inst::Exit);
    println!("missing null check:");
    println!("  {}\n", verify(&no_check).unwrap_err());

    // Variation 2: pointer arithmetic to walk out of the map.
    let mut ptr_math = base_program();
    ptr_math.insts.insert(
        3,
        Inst::Alu {
            op: BpfAluOp::Add,
            dst: r(2),
            src: Src::Imm(1 << 20),
        },
    );
    println!("pointer arithmetic:");
    println!("  {}\n", verify(&ptr_math).unwrap_err());

    // Variation 3: smuggle a pointer into memory.
    let mut leak_ptr = base_program();
    leak_ptr.insts[4] = Inst::StoreInd {
        ptr: r(2),
        src: r(2),
    };
    println!("storing a pointer:");
    println!("  {}\n", verify(&leak_ptr).unwrap_err());

    // Variation 4: forge a pointer from an integer.
    let mut forged = BpfProgram::new(vec![MapDef::new("z", 8, 16)]);
    forged.push(Inst::MovImm {
        dst: r(2),
        imm: 0x4_0000,
    });
    forged.push(Inst::LoadInd {
        dst: r(3),
        ptr: r(2),
    });
    forged.push(Inst::Exit);
    println!("dereferencing a forged scalar:");
    println!("  {}", verify(&forged).unwrap_err());
}
