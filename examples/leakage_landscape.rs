//! The paper's conceptual framework as a library: print the generated
//! Table I and Table II, then interrogate an MLD interactively.
//!
//! ```sh
//! cargo run --example leakage_landscape
//! ```

use pandora::core::examples::ZeroSkipMul;
use pandora::core::mld::{capacity_bits, partition_size, Mld};
use pandora::core::{equality_leak, render_table1, render_table2, EqualityLeak, Label};

fn main() {
    println!("{}", render_table1());
    println!("{}", render_table2());

    // Interrogate one MLD: the zero-skip multiplier.
    let mld = ZeroSkipMul;
    let inputs = (0..256u64).flat_map(|a| (0..256u64).map(move |b| (a, b)));
    let n = partition_size(&mld, inputs);
    println!(
        "{}: |S| = {n}, capacity <= {:.0} bit/instance",
        mld.name(),
        capacity_bits(n)
    );

    // And the active-attack analysis of §IV-A2.
    for (a, b, note) in [
        (Label::Private, Label::AttackerControlled, "attacker picks a non-zero operand"),
        (Label::Private, Label::Public, "public co-operand"),
        (Label::Public, Label::AttackerControlled, "no private data involved"),
    ] {
        let leak = equality_leak(a, b);
        let verdict = match leak {
            EqualityLeak::ChosenEquality => "chosen-equality oracle (replayable)",
            EqualityLeak::BlindEquality => "blind equality only",
            EqualityLeak::Nothing => "nothing",
        };
        println!("operands ({a}, {b}) [{note}]: leaks {verdict}");
    }
}
