//! Quickstart: assemble a program, run it on the out-of-order
//! simulator, and watch a microarchitectural optimization change its
//! timing without changing its results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pandora::isa::{Asm, Reg};
use pandora::sim::{Machine, OptConfig, SimConfig};

fn build_store_loop() -> pandora::isa::Program {
    let mut a = Asm::new();
    // Repeatedly store the same value to the same location — the
    // simplest possible silent-store victim.
    a.li(Reg::T0, 7);
    a.li(Reg::T1, 64); // iterations
    a.label("loop");
    a.sd(Reg::T0, Reg::ZERO, 0x1000);
    a.fence();
    a.addi(Reg::T1, Reg::T1, -1);
    a.bnez(Reg::T1, "loop");
    a.halt();
    a.assemble().expect("quickstart program assembles")
}

fn main() {
    let prog = build_store_loop();

    // Baseline machine: every optimization off.
    let mut baseline = Machine::new(SimConfig::default());
    baseline.load_program(&prog);
    let base_stats = baseline.run(1_000_000).expect("baseline run completes");

    // Same machine with silent stores enabled.
    let mut silent = Machine::new(SimConfig::with_opts(OptConfig::with_silent_stores()));
    silent.load_program(&prog);
    silent.mem_mut().write_u64(0x1000, 7).expect("in memory");
    let ss_stats = silent.run(1_000_000).expect("silent-store run completes");

    println!("same program, same architectural result, different time:");
    println!("  baseline:       {} cycles", base_stats.cycles);
    println!(
        "  silent stores:  {} cycles ({} stores dequeued silently)",
        ss_stats.cycles, ss_stats.silent_stores
    );
    println!(
        "  memory value:   {} == {}",
        baseline
            .mem()
            .read_u64(0x1000)
            .expect("0x1000 is mapped: the store loop wrote it"),
        silent
            .mem()
            .read_u64(0x1000)
            .expect("0x1000 is mapped: it was pre-seeded before the run")
    );
    println!();
    println!("that timing difference is a function of *store data* — data the");
    println!("baseline leakage model says is safe (paper Table I, column SS).");
}
