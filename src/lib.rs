#![warn(missing_docs)]

//! # pandora
//!
//! Umbrella crate for the Pandora workspace — a production-quality Rust
//! reproduction of *"Opening Pandora's Box: A Systematic Study of New
//! Ways Microarchitecture Can Leak Private Data"* (Sanchez Vicarte et
//! al., ISCA 2021).
//!
//! The workspace is organised as one crate per subsystem; this crate
//! simply re-exports them under stable module names:
//!
//! * [`core`] — the paper's primary contribution: microarchitectural
//!   leakage descriptors (MLDs), the leakage landscape (Table I), the
//!   optimization classification (Table II), and channel-capacity
//!   analysis.
//! * [`isa`] — the RISC-like instruction set and assembler every victim
//!   and attacker program compiles to.
//! * [`sim`] — a cycle-level out-of-order CPU simulator with the seven
//!   security-relevant optimizations the paper studies implemented as
//!   configurable components.
//! * [`crypto`] — a constant-time bitsliced AES-128 (the silent-store
//!   attack victim), both as a pure-Rust reference and as generated ISA
//!   code.
//! * [`sandbox`] — an eBPF-like bytecode, verifier and compiler (the DMP
//!   attack setting).
//! * [`channels`] — Prime+Probe / Evict+Time receivers and timing
//!   statistics.
//! * [`attacks`] — the end-to-end proofs of concept: the silent-store
//!   amplification gadget, BSAES key recovery, the 3-level IMP universal
//!   read gadget, and equality-oracle replay attacks for the remaining
//!   optimization classes.
//! * [`runner`] — the resilient experiment-orchestration runtime behind
//!   the `runall` suite driver: per-experiment deadlines, panic
//!   isolation, bounded retries, checkpoint/resume, and crash-safe
//!   result publication.
//! * [`server`] — the `pandora-server` leakage-scanning service: submit
//!   a victim over HTTP/JSON, get a Table-I-style report of which
//!   optimization classes leak its secret, behind per-tenant quotas,
//!   circuit breakers, and journaled crash-safe reports.
//!
//! ## Quickstart
//!
//! ```
//! use pandora::isa::{Asm, Reg};
//! use pandora::sim::{Machine, SimConfig};
//!
//! // A tiny program: sum 0..10 and halt.
//! let mut a = Asm::new();
//! a.li(Reg::T0, 0);
//! a.li(Reg::T1, 10);
//! a.label("loop");
//! a.add(Reg::T2, Reg::T2, Reg::T1);
//! a.addi(Reg::T1, Reg::T1, -1);
//! a.bnez(Reg::T1, "loop");
//! a.halt();
//! let prog = a.assemble().unwrap();
//!
//! let mut m = Machine::new(SimConfig::default());
//! m.load_program(&prog);
//! let stats = m.run(100_000).unwrap();
//! assert_eq!(m.reg(Reg::T2), 55);
//! assert!(stats.cycles > 0);
//! ```

pub use pandora_attacks as attacks;
pub use pandora_channels as channels;
pub use pandora_core as core;
pub use pandora_crypto as crypto;
pub use pandora_isa as isa;
pub use pandora_runner as runner;
pub use pandora_sandbox as sandbox;
pub use pandora_server as server;
pub use pandora_sim as sim;
