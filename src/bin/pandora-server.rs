//! `pandora-server`: serve the leakage scanner over HTTP/JSON.
//!
//! ```sh
//! pandora-server [options]
//!
//! Options:
//!   --port N          listen port (default 7311; 0 = ephemeral)
//!   --addr HOST       bind address (default 127.0.0.1)
//!   --threads N       worker threads (default 2)
//!   --queue N         admission queue depth (default 8)
//!   --data-dir PATH   journaled report store (default: no persistence)
//!   --deadline-ms N   per-job wall-clock budget (default 60000)
//!   --admin-token T   shared secret for POST /v1/drain; without it the
//!                     endpoint is disabled (drain via SIGTERM/handle)
//!   --api-key K=T     map API key K to tenant T (repeatable); with any
//!                     keys configured, scans require X-Api-Key and the
//!                     tenant is the key's mapping. Without keys, tenant
//!                     identity derives from the peer IP.
//!   --selftest        enable the crash/wedge self-test victims
//!   --selfscan PATH   no server: scan the built-in victims in-process
//!                     and write the combined report JSON to PATH
//! ```
//!
//! Quickstart:
//!
//! ```sh
//! pandora-server --port 7311 --admin-token s3cret &
//! curl -s localhost:7311/v1/scan -d '{"victim":"bsaes","trials":2}'
//! curl -s localhost:7311/healthz
//! curl -s -X POST -H 'X-Admin-Token: s3cret' localhost:7311/v1/drain
//! ```

use std::process::ExitCode;

use pandora::server::json::{obj, Json};
use pandora::server::server::{Server, ServerConfig};
use pandora::server::victims;

struct Options {
    addr: String,
    port: u16,
    cfg: ServerConfig,
    selfscan: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: pandora-server [--port N] [--addr HOST] [--threads N] [--queue N] \
         [--data-dir PATH] [--deadline-ms N] [--admin-token T] [--api-key K=T] \
         [--selftest] [--selfscan PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut o = Options {
        addr: "127.0.0.1".to_string(),
        port: 7311,
        cfg: ServerConfig::default(),
        selfscan: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| args.next().unwrap_or_else(|| {
            eprintln!("{a} needs a {what}");
            usage()
        });
        match a.as_str() {
            "--port" => o.port = val("port").parse().unwrap_or_else(|_| usage()),
            "--addr" => o.addr = val("host"),
            "--threads" => o.cfg.threads = val("count").parse().unwrap_or_else(|_| usage()),
            "--queue" => o.cfg.queue_depth = val("depth").parse().unwrap_or_else(|_| usage()),
            "--data-dir" => o.cfg.data_dir = Some(val("path").into()),
            "--deadline-ms" => {
                o.cfg.job_deadline_ms = val("ms").parse().unwrap_or_else(|_| usage());
            }
            "--admin-token" => o.cfg.admin_token = Some(val("token")),
            "--api-key" => {
                let kv = val("KEY=TENANT");
                let Some((k, t)) = kv.split_once('=') else {
                    eprintln!("--api-key wants KEY=TENANT, got {kv:?}");
                    usage()
                };
                o.cfg.api_keys.push((k.to_string(), t.to_string()));
            }
            "--selftest" => o.cfg.allow_selftest = true,
            "--selfscan" => o.selfscan = Some(val("path")),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    o
}

/// Runs both built-in victims in-process and writes one combined
/// report — the `runall` smoke path and the CI artifact, no socket
/// required.
fn selfscan(path: &str) -> ExitCode {
    let mut out = Vec::new();
    for (name, spec) in [
        ("bsaes", victims::bsaes_spec(7, 2)),
        ("ct-control", victims::ct_control_spec(7, 2)),
    ] {
        match pandora::server::run_scan(&spec, 0) {
            Ok(report) => {
                println!(
                    "{name}: leaking classes: {:?}",
                    report.leaking
                );
                out.push((name, report.to_json()));
            }
            Err(e) => {
                eprintln!("selfscan {name} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let doc = obj(out);
    let body = doc.dump();
    if let Err(e) = pandora::runner::atomic_write(std::path::Path::new(path), body.as_bytes()) {
        eprintln!("writing {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("report written to {path}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let o = parse_args();
    if let Some(path) = &o.selfscan {
        return selfscan(path);
    }
    let server = match Server::bind(&format!("{}:{}", o.addr, o.port), o.cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {}:{}: {e}", o.addr, o.port);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            println!("pandora-server listening on {addr}");
            println!("{}", obj(vec![("listening", Json::Str(addr.to_string()))]).dump());
        }
        Err(e) => eprintln!("local_addr: {e}"),
    }
    match server.run() {
        Ok(()) => {
            println!("drained; exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("server error: {e}");
            ExitCode::FAILURE
        }
    }
}
