//! `pandora-run`: assemble and execute a program on the simulated
//! machine from the command line.
//!
//! ```sh
//! pandora-run prog.asm [options]
//!
//! Options:
//!   --opt LIST        comma-separated optimizations to enable:
//!                     silent_stores, comp_simpl, fp_subnormal,
//!                     operand_packing, comp_reuse, value_pred,
//!                     rf_compress, dmp2, dmp3, dmp4, cdp, all
//!   --reg R=V         seed a register before the run (repeatable)
//!   --mem ADDR=V      seed a 64-bit memory word (repeatable; hex ok)
//!   --max-cycles N    cycle budget (default 10,000,000)
//!   --trace           print the microarchitectural event trace
//!   --stats           print full statistics (default: summary line)
//! ```
//!
//! Example — watch silent stores change timing but not results:
//!
//! ```sh
//! printf 'li t0, 7\nsd t0, 0(zero)\nfence\nsd t0, 0(zero)\nfence\nhalt\n' > /tmp/ss.asm
//! pandora-run /tmp/ss.asm
//! pandora-run /tmp/ss.asm --opt silent_stores
//! ```

use std::process::ExitCode;

use pandora::isa::{parse_program, Reg};
use pandora::sim::{Machine, OptConfig, SimConfig};

struct Options {
    path: String,
    opts: OptConfig,
    regs: Vec<(Reg, u64)>,
    mems: Vec<(u64, u64)>,
    max_cycles: u64,
    trace: bool,
    stats: bool,
    disasm: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: pandora-run <prog.asm> [--opt LIST] [--reg R=V]... \
         [--mem ADDR=V]... [--max-cycles N] [--trace] [--stats] [--disasm]"
    );
    std::process::exit(2);
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(h) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(h, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_reg_name(s: &str) -> Option<Reg> {
    // Reuse the text parser: parse a tiny probe program.
    let prog = parse_program(&format!("add {s}, {s}, {s}\nhalt")).ok()?;
    match prog[0] {
        pandora::isa::Instr::AluRR { rd, .. } => Some(rd),
        _ => None,
    }
}

fn apply_opt(opts: &mut OptConfig, name: &str) -> bool {
    match name {
        "silent_stores" => opts.silent_stores = true,
        "comp_simpl" => opts.comp_simpl = true,
        "fp_subnormal" => opts.fp_subnormal = true,
        "operand_packing" => opts.operand_packing = true,
        "comp_reuse" => opts.comp_reuse = true,
        "value_pred" => opts.value_pred = true,
        "rf_compress" => opts.rf_compress = true,
        "cdp" => opts.cdp = true,
        "dmp2" | "dmp3" | "dmp4" => {
            opts.dmp = true;
            opts.dmp_levels = name.as_bytes()[3] - b'0';
        }
        "all" => {
            for o in [
                "silent_stores",
                "comp_simpl",
                "fp_subnormal",
                "operand_packing",
                "comp_reuse",
                "value_pred",
                "rf_compress",
                "cdp",
                "dmp3",
            ] {
                apply_opt(opts, o);
            }
        }
        _ => return false,
    }
    true
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut o = Options {
        path: String::new(),
        opts: OptConfig::baseline(),
        regs: Vec::new(),
        mems: Vec::new(),
        max_cycles: 10_000_000,
        trace: false,
        stats: false,
        disasm: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--opt" => {
                let list = args.next().unwrap_or_else(|| usage());
                for name in list.split(',') {
                    if !apply_opt(&mut o.opts, name.trim()) {
                        eprintln!("unknown optimization `{name}`");
                        usage();
                    }
                }
            }
            "--reg" => {
                let kv = args.next().unwrap_or_else(|| usage());
                let (r, v) = kv.split_once('=').unwrap_or_else(|| usage());
                let reg = parse_reg_name(r).unwrap_or_else(|| usage());
                let val = parse_u64(v).unwrap_or_else(|| usage());
                o.regs.push((reg, val));
            }
            "--mem" => {
                let kv = args.next().unwrap_or_else(|| usage());
                let (a, v) = kv.split_once('=').unwrap_or_else(|| usage());
                let addr = parse_u64(a).unwrap_or_else(|| usage());
                let val = parse_u64(v).unwrap_or_else(|| usage());
                o.mems.push((addr, val));
            }
            "--max-cycles" => {
                let n = args.next().unwrap_or_else(|| usage());
                o.max_cycles = parse_u64(&n).unwrap_or_else(|| usage());
            }
            "--trace" => o.trace = true,
            "--stats" => o.stats = true,
            "--disasm" => o.disasm = true,
            "--help" | "-h" => usage(),
            path if o.path.is_empty() && !path.starts_with('-') => o.path = path.to_string(),
            _ => usage(),
        }
    }
    if o.path.is_empty() {
        usage();
    }
    o
}

fn main() -> ExitCode {
    let o = parse_args();
    let text = match std::fs::read_to_string(&o.path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{}: {e}", o.path);
            return ExitCode::FAILURE;
        }
    };
    let prog = match parse_program(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}:{e}", o.path);
            return ExitCode::FAILURE;
        }
    };

    if o.disasm {
        print!("{}", prog.to_asm_text());
        return ExitCode::SUCCESS;
    }

    let mut m = Machine::new(SimConfig::with_opts(o.opts));
    m.load_program(&prog);
    if o.trace {
        m.enable_trace();
    }
    for &(r, v) in &o.regs {
        m.set_reg(r, v);
    }
    for &(a, v) in &o.mems {
        if let Err(e) = m.mem_mut().write_u64(a, v) {
            eprintln!("--mem {a:#x}: {e}");
            return ExitCode::FAILURE;
        }
    }

    match m.run(o.max_cycles) {
        Ok(stats) => {
            if o.stats {
                println!("{stats}");
            } else {
                println!(
                    "halted after {} cycles, {} instructions (ipc {:.2})",
                    stats.cycles,
                    stats.committed,
                    stats.ipc()
                );
            }
            let nonzero: Vec<String> = Reg::all()
                .filter(|r| m.reg(*r) != 0)
                .map(|r| format!("{r}={:#x}", m.reg(r)))
                .collect();
            if !nonzero.is_empty() {
                println!("registers: {}", nonzero.join(" "));
            }
            if o.trace {
                for e in m.trace().events() {
                    println!("{e:?}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("simulation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
