//! Steady-state allocation audit for the simulator hot loop.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warmup long enough for every pipeline scratch buffer, cache set, ROB
//! ring and event-bus buffer to reach its high-water mark, 10k further
//! [`Machine::step`] calls must perform **zero** heap allocations. This
//! pins the tentpole property of the allocation-free cycle loop: the
//! per-cycle `Uop` clones, rename `srcs` collects, store-resolution
//! Vecs and tag-snapshot collects that used to dominate the profile
//! are gone, and nothing reintroduces them silently.
//!
//! One `#[test]` covers the quiet and noisy fig. 5 configurations plus
//! a [`Machine::reset`] + re-warm leg serially: the allocator is
//! process-global, so splitting the measurements into separate
//! `#[test]` functions would let the harness interleave them on
//! different threads and misattribute counts. The reset leg pins the
//! other half of the hot-loop contract — rewinding a machine for
//! another calibration trial neither allocates nor frees the buffers
//! the steady state depends on.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use std::sync::Arc;

use pandora_bench::perf::{
    fig5_noisy_config, fig5_quiet_config, fig5_step_machine, fig5_step_program, warmup,
    NOISY_WARMUP_STEPS, QUIET_WARMUP_STEPS,
};
use pandora_sim::{FleetSpec, Machine};

/// System allocator wrapper that counts every allocation event.
/// Deallocations are deliberately not counted: freeing during
/// steady-state is as much a hot-loop bug as allocating, but every
/// `alloc`/`realloc` pairs with a later free, so counting allocation
/// entry points alone already catches both directions of churn.
struct CountingAlloc {
    allocs: AtomicU64,
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc {
    allocs: AtomicU64::new(0),
};

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

const MEASURED_STEPS: u64 = 10_000;

fn allocs_now() -> u64 {
    ALLOC.allocs.load(Ordering::Relaxed)
}

fn steady_state_allocs(label: &str, m: &mut Machine, warmup_steps: u64) -> u64 {
    warmup(m, warmup_steps);
    let before = allocs_now();
    for _ in 0..MEASURED_STEPS {
        m.step()
            .unwrap_or_else(|e| panic!("{label}: step failed mid-measurement: {e}"));
    }
    let after = allocs_now();
    assert!(!m.is_halted(), "{label}: workload must never halt");
    after - before
}

#[test]
fn steady_state_step_is_allocation_free() {
    let mut quiet_machine = fig5_step_machine(fig5_quiet_config());
    let quiet = steady_state_allocs("fig5_quiet", &mut quiet_machine, QUIET_WARMUP_STEPS);
    assert_eq!(
        quiet, 0,
        "quiet fig5 config allocated {quiet} times across {MEASURED_STEPS} steady-state steps"
    );

    let mut noisy_machine = fig5_step_machine(fig5_noisy_config());
    let noisy = steady_state_allocs("fig5_noisy", &mut noisy_machine, NOISY_WARMUP_STEPS);
    assert_eq!(
        noisy, 0,
        "noisy fig5 config allocated {noisy} times across {MEASURED_STEPS} steady-state steps"
    );

    // `Machine::reset` promises to rewind to the post-construction
    // state *while keeping every allocation* — it is the primitive
    // calibration loops use to re-run trials without rebuilding a
    // machine. Both halves of that promise are audited here: the reset
    // itself must not allocate, and the post-reset machine must re-warm
    // back into an allocation-free steady state (nothing freed during
    // reset that the hot loop then has to re-grow).
    let before_reset = allocs_now();
    noisy_machine.reset();
    let reset_allocs = allocs_now() - before_reset;
    assert_eq!(
        reset_allocs, 0,
        "Machine::reset() allocated {reset_allocs} times; it must recycle in place"
    );

    let reheated = steady_state_allocs("fig5_noisy_after_reset", &mut noisy_machine, NOISY_WARMUP_STEPS);
    assert_eq!(
        reheated, 0,
        "post-reset noisy fig5 config allocated {reheated} times across {MEASURED_STEPS} \
         steady-state steps — reset must keep the hot loop's buffers at their high-water mark"
    );

    // Restore leg: `Machine::restore` rewinds to a mid-run checkpoint
    // with `clone_from` semantics — every state buffer is reused in
    // place at its captured capacity. Taking the snapshot and the
    // restore itself may allocate (a checkpoint is a deep clone, and
    // restore re-clones the hook boxes); what must NOT allocate is the
    // steady state afterwards, with *zero* re-warm steps: the
    // checkpoint captured the high-water marks, so the hot loop resumes
    // allocation-free from the first post-restore step.
    let ck = noisy_machine.snapshot();
    warmup(&mut noisy_machine, 1000); // drift past the checkpoint before rewinding
    noisy_machine.restore(&ck);
    let restored = steady_state_allocs("fig5_noisy_after_restore", &mut noisy_machine, 0);
    assert_eq!(
        restored, 0,
        "post-restore noisy fig5 config allocated {restored} times across {MEASURED_STEPS} \
         steady-state steps — restore must reuse every buffer at its captured high-water mark"
    );

    // Fleet leg: lockstep batch stepping through `Fleet::step_batch`
    // with an effective thread count of 1 runs inline on the caller's
    // thread (no spawning, no result buffers) and must inherit the
    // machines' allocation-free steady state — the fleet adds *zero*
    // per-batch overhead on the single-thread dispatch path that
    // `--fleet-threads 1` and nested-parallelism callers use.
    let program = Arc::new(fig5_step_program());
    let mut fleet = FleetSpec::seed_grid(
        fig5_quiet_config(),
        &program,
        [0, 1],
    )
    .with_threads(1)
    .build();
    fleet.step_batch(QUIET_WARMUP_STEPS);
    let before_fleet = allocs_now();
    fleet.step_batch(MEASURED_STEPS);
    let fleet_allocs = allocs_now() - before_fleet;
    assert_eq!(fleet.running(), 2, "fleet step workloads must never halt");
    assert_eq!(
        fleet_allocs, 0,
        "Fleet::step_batch (threads=1) allocated {fleet_allocs} times across {MEASURED_STEPS} \
         lockstep steps of 2 members — inline dispatch must stay allocation-free"
    );
}
