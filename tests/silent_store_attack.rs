//! End-to-end integration of the §V-A silent-store attack: gadget
//! amplification on every slice, slice recovery, and the full key
//! pipeline on a demo window.

use pandora::attacks::BsaesAttack;
use pandora::crypto::RoundKeys;

fn keys() -> ([u8; 16], [u8; 16], [u8; 16]) {
    (
        *b"victim's  key 01",
        *b"attacker  key 02",
        *b"known plaintext!",
    )
}

#[test]
fn every_slice_shows_paper_grade_separation() {
    let (vk, ak, vpt) = keys();
    for slice in 0..8 {
        let atk = BsaesAttack::new(vk, ak, vpt, slice);
        let truth = atk.true_slice_value();
        let hit = atk.measure_guess(truth, None).cycles;
        let miss = atk.measure_guess(truth ^ 0x2222, None).cycles;
        assert!(
            hit + 100 <= miss,
            "slice {slice}: hit={hit} miss={miss} (paper needs >100)"
        );
    }
}

#[test]
fn full_key_recovery_via_timing_only() {
    let (vk, ak, vpt) = keys();
    let atk = BsaesAttack::new(vk, ak, vpt, 0);
    let recovered = atk.recover_key(
        |k| {
            let t = BsaesAttack::new(vk, ak, vpt, k).true_slice_value();
            (0..9).map(|d| t.wrapping_sub(4).wrapping_add(d)).collect()
        },
        60,
    );
    assert_eq!(recovered, Some(vk));
}

#[test]
fn recovered_round10_key_inverts_to_master() {
    let (vk, _, _) = keys();
    let rk = RoundKeys::expand(&vk);
    assert_eq!(RoundKeys::from_round10(&rk.round(10)).master_key(), vk);
}

#[test]
fn oracle_is_noise_robust_when_paired_by_seed() {
    // With cache-state noise, the same seed must still order hit < miss
    // (the differential measurement an attacker would use).
    let (vk, ak, vpt) = keys();
    let atk = BsaesAttack::new(vk, ak, vpt, 3);
    let truth = atk.true_slice_value();
    for seed in 0..5u64 {
        let hit = atk.measure_guess(truth, Some(seed)).cycles;
        let miss = atk.measure_guess(truth ^ 1, Some(seed)).cycles;
        assert!(hit + 100 <= miss, "seed {seed}: {hit} vs {miss}");
    }
}
