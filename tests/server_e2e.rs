//! End-to-end tests of the `pandora-server` scan service: a live
//! socket, real HTTP, real scans — plus the robustness ladder
//! (quota, queue, deadline, breaker, drain) and chaos-kill recovery.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use pandora::runner::chaos::{self, ChaosKind, ChaosPlan, Site};
use pandora::server::json::{self, Json};
use pandora::server::quota::QuotaConfig;
use pandora::server::server::{Server, ServerConfig, ServerHandle};
use pandora::server::store::ScanStore;

/// Binds an ephemeral-port server and serves it on a background
/// thread; returns (addr, drain handle, join handle).
fn serve(cfg: ServerConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

/// One HTTP exchange; returns (status, headers, body).
fn exchange(addr: SocketAddr, raw: &[u8]) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    s.write_all(raw).expect("send");
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).expect("read response");
    let text = String::from_utf8(resp).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), body.to_string())
}

fn post_h(
    addr: SocketAddr,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, String, String) {
    let mut raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in headers {
        raw.push_str(&format!("{name}: {value}\r\n"));
    }
    raw.push_str("\r\n");
    raw.push_str(body);
    exchange(addr, raw.as_bytes())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    post_h(addr, path, &[], body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    exchange(addr, format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
}

fn parse(body: &str) -> Json {
    json::parse(body).unwrap_or_else(|e| panic!("bad JSON response: {e:?}\n{body}"))
}

fn error_code(body: &str) -> String {
    parse(body)
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no error.code in {body}"))
        .to_string()
}

fn leaking_classes(doc: &Json) -> Vec<String> {
    doc.get("leaking_classes")
        .and_then(Json::as_array)
        .expect("leaking_classes")
        .iter()
        .map(|c| c.as_str().expect("class name").to_string())
        .collect()
}

/// A trivial-but-valid bytecode victim (used where the test is about
/// the service, not the scanner — it scans in microseconds).
const TRIVIAL_JOB: &str = r#"{
    "victim": {
        "maps": [{"elem_size": 8, "len": 8}],
        "insts": [["mov_imm", 0, 1], ["exit"]]
    },
    "secret": {"map": 0, "a": [1,2], "b": [3,4]},
    "trials": 1
}"#;

#[test]
fn scan_service_end_to_end() {
    let cfg = ServerConfig {
        admin_token: Some("e2e-admin".to_string()),
        ..ServerConfig::default()
    };
    let (addr, _handle, join) = serve(cfg);

    // The known-leaky bitsliced-AES victim: the report must name the
    // silent-store and DMP classes with nonzero measured capacity.
    let (status, _, body) = post(addr, "/v1/scan", r#"{"victim":"bsaes","trials":2,"seed":7}"#);
    assert_eq!(status, 200, "{body}");
    let report = parse(&body);
    assert_eq!(report.get("architectural_leak").and_then(Json::as_bool), Some(false));
    let leaking = leaking_classes(&report);
    for class in ["silent-store", "dmp"] {
        assert!(leaking.contains(&class.to_string()), "{class} missing from {leaking:?}");
    }
    for c in report.get("classes").and_then(Json::as_array).expect("classes") {
        let name = c.get("class").and_then(Json::as_str).unwrap();
        let leaks = c.get("leaks").and_then(Json::as_bool).unwrap();
        if leaking.contains(&name.to_string()) {
            assert!(leaks);
            let cap = match c.get("capacity_bits_per_run") {
                Some(Json::Num(n)) => *n,
                other => panic!("capacity missing: {other:?}"),
            };
            assert!(cap > 0.0, "{name} leaks but capacity is 0");
        }
    }

    // The constant-time control: no class may flag it.
    let (status, _, body) = post(addr, "/v1/scan", r#"{"victim":"ct-control","trials":2,"seed":7}"#);
    assert_eq!(status, 200, "{body}");
    let control = parse(&body);
    assert!(leaking_classes(&control).is_empty(), "{body}");
    assert_eq!(control.get("architectural_leak").and_then(Json::as_bool), Some(false));

    // Health reflects the two completed scans; readiness is green.
    let (status, _, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let health = parse(&body);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    let jobs = health.get("jobs").expect("jobs");
    assert_eq!(jobs.get("completed").and_then(Json::as_u64), Some(2));
    assert_eq!(get(addr, "/readyz").0, 200);

    // Drain is authenticated: a tenant request without (or with a
    // wrong) admin token cannot shut the service down.
    let (status, _, body) = post(addr, "/v1/drain", "");
    assert_eq!(status, 401, "{body}");
    assert_eq!(error_code(&body), "admin-unauthorized");
    let (status, _, _) = post_h(addr, "/v1/drain", &[("X-Admin-Token", "wrong")], "");
    assert_eq!(status, 401);
    assert_eq!(get(addr, "/readyz").0, 200, "failed drains must not drain");

    // Graceful drain with the token: the endpoint acknowledges, run()
    // returns Ok, and the port stops accepting. Both header forms work;
    // Bearer is the one exercised here.
    let (status, _, _) = post_h(
        addr,
        "/v1/drain",
        &[("Authorization", "Bearer e2e-admin")],
        "",
    );
    assert_eq!(status, 200);
    join.join().expect("server thread").expect("clean drain");
    assert!(TcpStream::connect(addr).is_err(), "listener must be closed after drain");
}

#[test]
fn structured_refusals_for_bad_and_over_quota_requests() {
    let cfg = ServerConfig {
        quota: QuotaConfig {
            burst: 1,
            per_second: 0.001,
            ..QuotaConfig::default()
        },
        ..ServerConfig::default()
    };
    let (addr, handle, join) = serve(cfg);

    // Malformed JSON → 400 envelope.
    let (status, _, body) = post(addr, "/v1/scan", "{nope");
    assert_eq!(status, 400, "{body}");
    assert_eq!(error_code(&body), "bad-request");

    // Unverifiable bytecode → 422 verify-failed.
    let (status, _, body) = post(
        addr,
        "/v1/scan",
        r#"{"victim":{"maps":[{"elem_size":8,"len":8}],
            "insts":[["mov_imm",1,0],["lookup",0,0,1],["load_ind",2,0],["exit"]]},
            "secret":{"map":0,"a":[1],"b":[2]}}"#,
    );
    assert_eq!(status, 422, "{body}");
    assert_eq!(error_code(&body), "verify-failed");

    // Oversized body → 413 before any parsing.
    let huge = format!(
        "POST /v1/scan HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        512 * 1024
    );
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(huge.as_bytes()).unwrap();
    s.write_all(&vec![b'x'; 512 * 1024]).ok();
    let mut resp = String::new();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let _ = s.read_to_string(&mut resp);
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");

    // Raw garbage → 400 bad-http envelope.
    let (status, _, body) = exchange(addr, b"EAT / GLUE\r\n\r\n");
    assert_eq!(status, 400);
    assert_eq!(error_code(&body), "bad-http");

    // Unknown route / wrong method.
    assert_eq!(get(addr, "/nope").0, 404);
    assert_eq!(get(addr, "/v1/scan").0, 405);

    // Quota: burst of 1 admits the first scan, refuses the second with
    // 429 + Retry-After.
    let (status, _, body) = post(addr, "/v1/scan", TRIVIAL_JOB);
    assert_eq!(status, 200, "{body}");
    let (status, head, body) = post(addr, "/v1/scan", TRIVIAL_JOB);
    assert_eq!(status, 429, "{body}");
    assert_eq!(error_code(&body), "quota-exhausted");
    assert!(head.contains("Retry-After:"), "{head}");

    // In open mode identity is the peer IP: declaring a fresh tenant
    // name in the body does not mint a fresh quota bucket.
    let rotated = TRIVIAL_JOB.replacen('{', "{\"tenant\":\"fresh-name\",", 1);
    let (status, _, body) = post(addr, "/v1/scan", &rotated);
    assert_eq!(status, 429, "rotating names must not bypass quota: {body}");

    // With no admin token configured, the drain endpoint is disabled
    // outright — no request shuts this server down.
    let (status, _, body) = post(addr, "/v1/drain", "");
    assert_eq!(status, 403, "{body}");
    assert_eq!(error_code(&body), "admin-disabled");
    assert_eq!(get(addr, "/readyz").0, 200);

    handle.drain();
    join.join().unwrap().unwrap();
}

#[test]
fn supervision_isolates_panics_and_wedges_and_trips_the_breaker() {
    let cfg = ServerConfig {
        allow_selftest: true,
        job_deadline_ms: 400,
        quota: QuotaConfig {
            burst: 10,
            per_second: 10.0,
            breaker_threshold: 2,
            breaker_cooldown_ms: 60_000,
            ..QuotaConfig::default()
        },
        api_keys: vec![
            ("key-alice".to_string(), "alice".to_string()),
            ("key-bob".to_string(), "bob".to_string()),
        ],
        ..ServerConfig::default()
    };
    let (addr, handle, join) = serve(cfg);
    let as_alice: &[(&str, &str)] = &[("X-Api-Key", "key-alice")];
    let as_bob: &[(&str, &str)] = &[("X-Api-Key", "key-bob")];

    // With API keys configured, unauthenticated and forged-key scans
    // are refused before any admission or scanning.
    let (status, _, body) = post(addr, "/v1/scan", TRIVIAL_JOB);
    assert_eq!(status, 401, "{body}");
    assert_eq!(error_code(&body), "auth-required");
    let (status, _, _) = post_h(addr, "/v1/scan", &[("X-Api-Key", "nope")], TRIVIAL_JOB);
    assert_eq!(status, 401);

    // Tenant identity comes from the key; a body claiming someone
    // else's tenant is a 403, not an identity swap.
    let (status, _, body) = post_h(
        addr,
        "/v1/scan",
        as_alice,
        r#"{"tenant":"bob","victim":"selftest-panic"}"#,
    );
    assert_eq!(status, 403, "{body}");
    assert_eq!(error_code(&body), "tenant-mismatch");

    // A panicking scan is isolated into a structured 500.
    let (status, _, body) = post_h(addr, "/v1/scan", as_alice, r#"{"victim":"selftest-panic","seed":1}"#);
    assert_eq!(status, 500, "{body}");
    assert_eq!(error_code(&body), "scan-panicked");

    // Second consecutive panic trips the tenant's breaker...
    let (status, _, _) = post_h(addr, "/v1/scan", as_alice, r#"{"victim":"selftest-panic","seed":2}"#);
    assert_eq!(status, 500);

    // ...so the next request is refused with 503 + Retry-After.
    let (status, head, body) = post_h(addr, "/v1/scan", as_alice, TRIVIAL_JOB);
    assert_eq!(status, 503, "{body}");
    assert_eq!(error_code(&body), "breaker-open");
    assert!(head.contains("Retry-After:"), "{head}");

    // A different tenant is unaffected — and a wedged scan for it is
    // abandoned at the deadline with a 504, not a hung worker.
    let (status, _, body) = post_h(
        addr,
        "/v1/scan",
        as_bob,
        r#"{"tenant":"bob","victim":"selftest-wedge"}"#,
    );
    assert_eq!(status, 504, "{body}");
    assert_eq!(error_code(&body), "deadline-exceeded");

    // The pool survived all of it: a healthy scan still completes, and
    // health reports the supervision counters and open breaker.
    let bob_job = r#"{
        "tenant": "bob",
        "victim": {"maps": [{"elem_size": 8, "len": 8}],
                   "insts": [["mov_imm", 0, 1], ["exit"]]},
        "secret": {"map": 0, "a": [1,2], "b": [3,4]},
        "trials": 1
    }"#;
    let (status, _, body) = post_h(addr, "/v1/scan", as_bob, bob_job);
    assert_eq!(status, 200, "{body}");
    let (_, _, body) = get(addr, "/healthz");
    let health = parse(&body);
    let jobs = health.get("jobs").expect("jobs");
    assert_eq!(jobs.get("supervised_panics").and_then(Json::as_u64), Some(2));
    assert_eq!(jobs.get("supervised_timeouts").and_then(Json::as_u64), Some(1));
    let breakers = health.get("breakers_open").and_then(Json::as_array).unwrap();
    assert_eq!(breakers.len(), 1);
    assert_eq!(breakers[0].as_str(), Some("alice"));

    handle.drain();
    join.join().unwrap().unwrap();
}

#[test]
fn a_full_admission_queue_sheds_with_503() {
    // Depth 0 makes every connection surplus: the accept loop must
    // shed each one immediately with 503 + Retry-After, never parking
    // or parsing it.
    let cfg = ServerConfig {
        queue_depth: 0,
        ..ServerConfig::default()
    };
    let (addr, handle, join) = serve(cfg);
    let (status, head, body) = post(addr, "/v1/scan", TRIVIAL_JOB);
    assert_eq!(status, 503, "{body}");
    assert_eq!(error_code(&body), "queue-full");
    assert!(head.contains("Retry-After:"), "{head}");
    handle.drain();
    join.join().unwrap().unwrap();
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pandora-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Byte-level snapshot of a results directory.
fn dir_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("results dir")
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

fn run_one_scan_server(dir: &Path, body: &str) -> String {
    let cfg = ServerConfig {
        data_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    };
    let (addr, handle, join) = serve(cfg);
    let (status, _, resp) = post(addr, "/v1/scan", body);
    assert_eq!(status, 200, "{resp}");
    handle.drain();
    join.join().unwrap().unwrap();
    resp
}

#[test]
fn chaos_killed_publish_recovers_byte_identically() {
    let job = r#"{"victim":"bsaes","trials":1,"seed":3}"#;

    // Clean run: serve one scan to completion, journaled and published.
    let clean = tmpdir("clean");
    let report = run_one_scan_server(&clean, job);
    let baseline = dir_bytes(&clean);
    assert_eq!(baseline.len(), 2, "journal + one report: {baseline:?}");

    // Chaos run: the same store suffers a simulated kill mid-publish —
    // a torn temp file hits the disk and the journal never records the
    // scan (the store's ordering invariant). Chaos fail-points are
    // thread-local, so the kill is injected around a direct store
    // publish on this thread: exactly the write path the server's
    // worker runs.
    let crashed = tmpdir("crashed");
    {
        let mut store = ScanStore::open(&crashed).expect("open store");
        let guard = chaos::install(&ChaosPlan::single(
            Site::PublishTmpWrite,
            0,
            ChaosKind::TornWriteCrash { keep: 7 },
        ));
        let err = store.publish("scan-torn", &report).expect_err("kill fires");
        assert!(chaos::is_sim_kill(&err), "unexpected error: {err}");
        assert_eq!(guard.stats().injected, 1);
    }
    // The torn temp file is on disk; nothing is journaled.
    assert!(
        std::fs::read_dir(&crashed).unwrap().count() > 1,
        "expected journal + torn tmp debris"
    );
    let store = ScanStore::open(&crashed).expect("recovery open");
    assert!(store.is_empty(), "torn publish must not count as done");
    drop(store);

    // Restart: a fresh server on the crashed directory re-runs the
    // same job; recovery swept the debris and the results directory
    // ends byte-identical to the clean run's.
    let report2 = run_one_scan_server(&crashed, job);
    assert_eq!(report, report2, "reports must be deterministic");
    assert_eq!(dir_bytes(&crashed), baseline, "recovered dir must match clean run");
}

/// Submitting the same job twice with a store serves the second from
/// the journaled cache (and survives a server restart).
#[test]
fn journaled_reports_are_served_from_cache_across_restarts() {
    let dir = tmpdir("cache");
    let first = run_one_scan_server(&dir, TRIVIAL_JOB);

    let cfg = ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let (addr, handle, join) = serve(cfg);
    let (status, _, body) = post(addr, "/v1/scan", TRIVIAL_JOB);
    assert_eq!(status, 200);
    assert_eq!(body, first, "cached report must be byte-identical");
    let (_, _, health) = get(addr, "/healthz");
    let health = parse(&health);
    assert_eq!(
        health.get("jobs").and_then(|j| j.get("cached")).and_then(Json::as_u64),
        Some(1)
    );
    handle.drain();
    join.join().unwrap().unwrap();
}
