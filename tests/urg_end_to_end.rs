//! End-to-end integration of the §V-B DMP universal read gadget:
//! verifier acceptance, 3-level leakage, multi-byte dump, and the
//! 2-level negative result.

use pandora::attacks::UrgAttack;
use pandora::sandbox::{verify, BpfProgram, BpfReg, Inst, MapDef};

const SECRET_ADDR: u64 = 0x20_0000;

#[test]
fn the_attack_program_is_memory_safe_by_construction() {
    let atk = UrgAttack::new(3);
    assert!(verify(atk.program()).is_ok());
    // And an unsafe variant (missing null check) is rejected — the
    // verifier is not a rubber stamp.
    let mut bad = BpfProgram::new(vec![MapDef::new("z", 8, 4)]);
    bad.push(Inst::MovImm {
        dst: BpfReg(1),
        imm: 0,
    });
    bad.push(Inst::Lookup {
        dst: BpfReg(2),
        map: 0,
        idx: BpfReg(1),
    });
    bad.push(Inst::LoadInd {
        dst: BpfReg(3),
        ptr: BpfReg(2),
    });
    bad.push(Inst::Exit);
    assert!(verify(&bad).is_err());
}

#[test]
fn three_level_imp_reads_arbitrary_bytes() {
    for secret in [0x07u8, 0x42, 0x9d, 0xfe] {
        let mut atk = UrgAttack::new(3);
        atk.plant_secret(SECRET_ADDR, secret);
        assert_eq!(atk.leak_byte(SECRET_ADDR), Some(secret), "byte {secret:#x}");
    }
}

#[test]
fn urg_dumps_a_region() {
    let mut atk = UrgAttack::new(3);
    let secret = *b"pwn";
    for (i, &b) in secret.iter().enumerate() {
        atk.plant_secret(SECRET_ADDR + i as u64, b);
    }
    let dumped: Vec<u8> = atk
        .dump(SECRET_ADDR, 3)
        .into_iter()
        .map(|b| b.expect("every byte leaks"))
        .collect();
    assert_eq!(dumped, secret);
}

#[test]
fn two_level_imp_leaks_nothing_about_the_secret() {
    let run = |secret: u8| {
        let mut atk = UrgAttack::new(2);
        atk.plant_secret(SECRET_ADDR, secret);
        atk.run(SECRET_ADDR, 1).0
    };
    let a = run(0x00);
    let b = run(0xff);
    assert_eq!(a.candidates, b.candidates);
    assert_eq!(a.timings, b.timings, "probe timings are secret-independent");
}

#[test]
fn demand_accesses_never_touch_the_secret() {
    // The leak is purely microarchitectural: no architectural
    // load/store of the secret address happens (memory contents at the
    // secret are untouched, and the sandbox region bound holds).
    let mut atk = UrgAttack::new(3);
    atk.plant_secret(SECRET_ADDR, 0x5c);
    let (run, m) = atk.run(SECRET_ADDR, 1);
    assert_eq!(m.mem().read_u8(SECRET_ADDR).unwrap(), 0x5c, "unmodified");
    let (lo, hi) = run.sandbox;
    assert!(SECRET_ADDR < lo || SECRET_ADDR >= hi);
    // Yet the prefetcher dereferenced it.
    assert!(UrgAttack::deref_addresses(&m).contains(&SECRET_ADDR));
}
