//! Golden-stats regression harness: pins the simulator's observable
//! behaviour — full [`SimStats`], store timelines, and structured
//! errors — for the fig4/fig5/fig6 workloads and a per-optimization
//! microprogram, with and without fault injection.
//!
//! The golden values below were captured on the pre-refactor monolithic
//! `Machine::step` (PR 1 tree) and must be reproduced **bit for bit**
//! by the stage-decomposed pipeline: any drift in cycles, stat
//! counters, trace events or error rendering is a refactor bug, not an
//! acceptable variation.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! GOLDEN_PRINT=1 cargo test --test golden_stats -- --nocapture
//! ```
//!
//! which prints paste-ready `const` declarations instead of asserting.

use pandora_attacks::{AmplifyGadget, BsaesAttack, FlushKind};
use pandora_isa::{Asm, FpOp, Reg};
use pandora_sim::{
    FaultKind, FaultPlan, Machine, NoiseConfig, OptConfig, ReuseKey, RfcMatch, SimConfig,
    SimError, SimStats, VpKind,
};

fn printing() -> bool {
    std::env::var_os("GOLDEN_PRINT").is_some()
}

fn check_stats(name: &str, got: &SimStats, want: &SimStats) {
    if printing() {
        println!("const {name}: SimStats = {got:?};");
        return;
    }
    assert_eq!(got, want, "{name} drifted from the pre-refactor capture");
}

fn check_str(name: &str, got: &str, want: &str) {
    if printing() {
        println!("const {name}: &str = {got:?};");
        return;
    }
    assert_eq!(got, want, "{name} drifted from the pre-refactor capture");
}

// ---------------------------------------------------------------------
// Fig 4: the four silent-store action sequences (A–D).
// ---------------------------------------------------------------------

const TARGET: u64 = 0x1_0000;

/// Replicates the fig4_cases bench-bin runner: program + fence + halt
/// on a silent-store machine with tracing on.
fn fig4(build: impl FnOnce(&mut Asm) -> usize, setup: impl FnOnce(&mut Machine)) -> (usize, Machine) {
    let mut a = Asm::new();
    let store_pc = build(&mut a);
    a.fence();
    a.halt();
    let prog = a.assemble().expect("fig4 program assembles");
    let mut m = Machine::new(SimConfig::with_opts(OptConfig::with_silent_stores()));
    m.enable_trace();
    m.load_program(&prog);
    setup(&mut m);
    m.run(1_000_000).expect("fig4 program completes");
    (store_pc, m)
}

fn fig4_check(case: &str, stats_want: &SimStats, timeline_want: &str, store_pc: usize, m: &Machine) {
    check_stats(&format!("FIG4_{case}_STATS"), m.stats(), stats_want);
    let timeline = format!("{:?}", m.trace().store_timeline(store_pc));
    check_str(&format!("FIG4_{case}_TIMELINE"), &timeline, timeline_want);
}

#[test]
fn golden_fig4_case_a_silent() {
    let (pc, m) = fig4(
        |a| {
            a.ld(Reg::T0, Reg::ZERO, TARGET as i64);
            a.fence();
            a.li(Reg::T0, 42);
            let pc = a.here();
            a.sd(Reg::T0, Reg::ZERO, TARGET as i64);
            pc
        },
        |m| m.mem_mut().write_u64(TARGET, 42).expect("in memory"),
    );
    fig4_check("A", &FIG4_A_STATS, FIG4_A_TIMELINE, pc, &m);
}

#[test]
fn golden_fig4_case_b_value_mismatch() {
    let (pc, m) = fig4(
        |a| {
            a.ld(Reg::T0, Reg::ZERO, TARGET as i64);
            a.fence();
            a.li(Reg::T0, 43);
            let pc = a.here();
            a.sd(Reg::T0, Reg::ZERO, TARGET as i64);
            pc
        },
        |m| m.mem_mut().write_u64(TARGET, 42).expect("in memory"),
    );
    fig4_check("B", &FIG4_B_STATS, FIG4_B_TIMELINE, pc, &m);
}

#[test]
fn golden_fig4_case_c_no_load_port() {
    let (pc, m) = fig4(
        |a| {
            a.li(Reg::T0, 42);
            let pc = a.here();
            a.sd(Reg::T0, Reg::ZERO, TARGET as i64);
            for i in 0..24i64 {
                a.ld(Reg::T1, Reg::ZERO, 0x2_0000 + 64 * i);
            }
            pc
        },
        |m| m.mem_mut().write_u64(TARGET, 42).expect("in memory"),
    );
    fig4_check("C", &FIG4_C_STATS, FIG4_C_TIMELINE, pc, &m);
}

#[test]
fn golden_fig4_case_d_late_ss_load() {
    let (pc, m) = fig4(
        |a| {
            a.li(Reg::T0, 42);
            let pc = a.here();
            a.sd(Reg::T0, Reg::ZERO, TARGET as i64);
            pc
        },
        |m| m.mem_mut().write_u64(TARGET, 42).expect("in memory"),
    );
    fig4_check("D", &FIG4_D_STATS, FIG4_D_TIMELINE, pc, &m);
}

// ---------------------------------------------------------------------
// Fig 5: the amplification gadget, all variants and core ablations.
// ---------------------------------------------------------------------

const DELAY: u64 = 0x8_0000;

/// Replicates the fig5_amplification bench-bin experiment and returns
/// the finished machine (callers read stats or inspect errors).
fn fig5(
    cfg: SimConfig,
    kind: Option<FlushKind>,
    old: u64,
    new: u64,
    faults: Option<FaultPlan>,
) -> Result<Machine, SimError> {
    let gadget = kind.map(|k| AmplifyGadget::new(&cfg, TARGET, DELAY, k));
    let mut a = Asm::new();
    a.ld(Reg::T0, Reg::ZERO, TARGET as i64);
    for i in 1..6i64 {
        a.ld(Reg::T0, Reg::ZERO, (TARGET + 0x1000) as i64 + 64 * i);
    }
    a.fence();
    a.li(Reg::T0, new);
    if let Some(g) = &gadget {
        g.emit(&mut a);
    }
    a.sd(Reg::T0, Reg::ZERO, TARGET as i64);
    for i in 1..6i64 {
        a.sd(Reg::T0, Reg::ZERO, (TARGET + 0x1000) as i64 + 64 * i);
    }
    a.fence();
    a.halt();
    let prog = a.assemble().expect("fig5 program assembles");
    let mut m = Machine::new(cfg);
    m.load_program(&prog);
    m.mem_mut().write_u64(TARGET, old).expect("in memory");
    if let Some(g) = &gadget {
        g.setup_memory(m.mem_mut());
        g.setup_memory_flush_variant(m.mem_mut());
    }
    if let Some(plan) = faults {
        m.inject_faults(plan);
    }
    m.run(1_000_000)?;
    Ok(m)
}

#[test]
fn golden_fig5_gadget_matrix() {
    let base = SimConfig::with_opts(OptConfig::with_silent_stores());
    let cases: [(&str, Option<FlushKind>, u64, &SimStats); 6] = [
        ("FIG5_CONTROL_SILENT", None, 42, &FIG5_CONTROL_SILENT),
        ("FIG5_CONTROL_LOUD", None, 41, &FIG5_CONTROL_LOUD),
        (
            "FIG5_CONTENTION_SILENT",
            Some(FlushKind::Contention),
            42,
            &FIG5_CONTENTION_SILENT,
        ),
        (
            "FIG5_CONTENTION_LOUD",
            Some(FlushKind::Contention),
            41,
            &FIG5_CONTENTION_LOUD,
        ),
        (
            "FIG5_FLUSH_SILENT",
            Some(FlushKind::FlushInstr),
            42,
            &FIG5_FLUSH_SILENT,
        ),
        (
            "FIG5_FLUSH_LOUD",
            Some(FlushKind::FlushInstr),
            41,
            &FIG5_FLUSH_LOUD,
        ),
    ];
    for (name, kind, old, want) in cases {
        let m = fig5(base, kind, old, 42, None).expect("fig5 completes");
        check_stats(name, m.stats(), want);
    }
}

#[test]
fn golden_fig5_core_ablation() {
    let cases: [(&str, SimConfig, u64, &SimStats); 4] = [
        (
            "FIG5_LITTLE_SILENT",
            SimConfig::little_core(),
            42,
            &FIG5_LITTLE_SILENT,
        ),
        (
            "FIG5_LITTLE_LOUD",
            SimConfig::little_core(),
            41,
            &FIG5_LITTLE_LOUD,
        ),
        ("FIG5_BIG_SILENT", SimConfig::big_core(), 42, &FIG5_BIG_SILENT),
        ("FIG5_BIG_LOUD", SimConfig::big_core(), 41, &FIG5_BIG_LOUD),
    ];
    for (name, mut cfg, old, want) in cases {
        cfg.opts = OptConfig::with_silent_stores();
        let m = fig5(cfg, Some(FlushKind::Contention), old, 42, None).expect("fig5 completes");
        check_stats(name, m.stats(), want);
    }
}

#[test]
fn golden_fig5_under_random_faults() {
    let base = SimConfig::with_opts(OptConfig::with_silent_stores());
    let plan = FaultPlan::random(0xfeed, 24, 1..600, 0x1_0000..0x1_0800);
    let m = fig5(base, Some(FlushKind::Contention), 41, 42, Some(plan))
        .expect("disturbed fig5 still completes");
    check_stats("FIG5_FAULTED", m.stats(), &FIG5_FAULTED);
}

#[test]
fn golden_fig5_under_pinned_seed_noise() {
    // The seed-driven environmental noise model must be exactly as
    // reproducible as the quiet machine: a pinned seed pins the whole
    // SimStats, noise events included. Paranoid invariant checking is
    // enabled to pin (and prove) that a disturbed-but-legal run passes
    // every pipeline invariant without perturbing the stats.
    let mut base = SimConfig::with_opts(OptConfig::with_silent_stores());
    base.noise = NoiseConfig::at_intensity(30, 0xfeed).with_window(0x1_0000, 0x2_0000);
    base.paranoid_checks = true;
    let m = fig5(base, Some(FlushKind::Contention), 41, 42, None)
        .expect("noisy fig5 still completes");
    assert!(m.stats().noise_events > 0, "the noise hook must have fired");
    check_stats("FIG5_NOISY", m.stats(), &FIG5_NOISY);
}

/// The fig5 workload forked at the warm-prefix boundary instead of run
/// straight through: program and gadget memory are baked into a
/// checkpoint *before* `TARGET` holds the trial value, then the
/// per-trial `old` is written after the fork and the continuation runs
/// to halt. `recycled` (when primed by a previous case) is restored
/// over rather than replaced, exercising the fleet pool's dirty-slot
/// path on every case after the first.
fn fig5_forked(
    cfg: SimConfig,
    kind: Option<FlushKind>,
    old: u64,
    new: u64,
    recycled: &mut Option<Machine>,
) -> Machine {
    let gadget = kind.map(|k| AmplifyGadget::new(&cfg, TARGET, DELAY, k));
    let mut a = Asm::new();
    a.ld(Reg::T0, Reg::ZERO, TARGET as i64);
    for i in 1..6i64 {
        a.ld(Reg::T0, Reg::ZERO, (TARGET + 0x1000) as i64 + 64 * i);
    }
    a.fence();
    a.li(Reg::T0, new);
    if let Some(g) = &gadget {
        g.emit(&mut a);
    }
    a.sd(Reg::T0, Reg::ZERO, TARGET as i64);
    for i in 1..6i64 {
        a.sd(Reg::T0, Reg::ZERO, (TARGET + 0x1000) as i64 + 64 * i);
    }
    a.fence();
    a.halt();
    let prog = a.assemble().expect("fig5 program assembles");
    let mut warm = Machine::new(cfg);
    warm.load_program(&prog);
    if let Some(g) = &gadget {
        g.setup_memory(warm.mem_mut());
        g.setup_memory_flush_variant(warm.mem_mut());
    }
    // Six warm loads + the fence = seven committed instructions.
    warm.run_until_committed(7, 1_000_000).expect("warm prefix completes");
    let ck = warm.snapshot();
    assert!(ck.cycle() > 0, "the boundary must be mid-run, not cycle 0");

    let mut m = match recycled.take() {
        Some(mut m) => {
            m.restore(&ck);
            m
        }
        None => Machine::from_checkpoint(&ck),
    };
    m.mem_mut().write_u64(TARGET, old).expect("in memory");
    m.run(1_000_000).expect("forked continuation completes");

    // Prove snapshotting was pure: the warm donor, continued past the
    // same per-trial write, must land on the same stats as the fork.
    warm.mem_mut().write_u64(TARGET, old).expect("in memory");
    warm.run(1_000_000).expect("snapshot donor continuation completes");
    assert_eq!(
        warm.stats(),
        m.stats(),
        "taking a snapshot perturbed the donor machine"
    );

    // Hand the finished donor back as the next case's dirty pool slot.
    *recycled = Some(warm);
    m
}

/// Mid-run fork gate for the checkpoint subsystem: every pinned fig5
/// configuration, forked at the warm-prefix boundary with the trial
/// value written *after* the fork, must reproduce the straight-run
/// golden capture bit for bit — including the noisy config, whose RNG
/// streams must resume mid-sequence rather than rewind.
#[test]
fn golden_fig5_checkpoint_boundary_matches_straight_run() {
    let base = SimConfig::with_opts(OptConfig::with_silent_stores());
    let mut noisy = base;
    noisy.noise = NoiseConfig::at_intensity(30, 0xfeed).with_window(0x1_0000, 0x2_0000);
    noisy.paranoid_checks = true;
    let mut little = SimConfig::little_core();
    little.opts = OptConfig::with_silent_stores();
    let mut big = SimConfig::big_core();
    big.opts = OptConfig::with_silent_stores();

    let cases: [(&str, SimConfig, Option<FlushKind>, u64, &SimStats); 11] = [
        ("FIG5_CONTROL_SILENT", base, None, 42, &FIG5_CONTROL_SILENT),
        ("FIG5_CONTROL_LOUD", base, None, 41, &FIG5_CONTROL_LOUD),
        (
            "FIG5_CONTENTION_SILENT",
            base,
            Some(FlushKind::Contention),
            42,
            &FIG5_CONTENTION_SILENT,
        ),
        (
            "FIG5_CONTENTION_LOUD",
            base,
            Some(FlushKind::Contention),
            41,
            &FIG5_CONTENTION_LOUD,
        ),
        (
            "FIG5_FLUSH_SILENT",
            base,
            Some(FlushKind::FlushInstr),
            42,
            &FIG5_FLUSH_SILENT,
        ),
        (
            "FIG5_FLUSH_LOUD",
            base,
            Some(FlushKind::FlushInstr),
            41,
            &FIG5_FLUSH_LOUD,
        ),
        (
            "FIG5_LITTLE_SILENT",
            little,
            Some(FlushKind::Contention),
            42,
            &FIG5_LITTLE_SILENT,
        ),
        (
            "FIG5_LITTLE_LOUD",
            little,
            Some(FlushKind::Contention),
            41,
            &FIG5_LITTLE_LOUD,
        ),
        (
            "FIG5_BIG_SILENT",
            big,
            Some(FlushKind::Contention),
            42,
            &FIG5_BIG_SILENT,
        ),
        (
            "FIG5_BIG_LOUD",
            big,
            Some(FlushKind::Contention),
            41,
            &FIG5_BIG_LOUD,
        ),
        (
            "FIG5_NOISY",
            noisy,
            Some(FlushKind::Contention),
            41,
            &FIG5_NOISY,
        ),
    ];
    let mut recycled = None;
    for (name, cfg, kind, old, want) in cases {
        let m = fig5_forked(cfg, kind, old, 42, &mut recycled);
        if !printing() {
            assert_eq!(
                m.stats(),
                want,
                "{name} forked at the checkpoint boundary drifted from the straight-run capture"
            );
        }
    }
}

#[test]
fn golden_fig5_dropped_completion_deadlocks() {
    let base = SimConfig::with_opts(OptConfig::with_silent_stores());
    let plan = FaultPlan::single(40, FaultKind::DroppedCompletion);
    let err = fig5(base, Some(FlushKind::Contention), 41, 42, Some(plan))
        .expect_err("a dropped completion must wedge the pipeline");
    assert!(matches!(err, SimError::Deadlock { .. }), "got {err}");
    check_str("FIG5_DEADLOCK_RENDERING", &err.to_string(), FIG5_DEADLOCK_RENDERING);
}

// ---------------------------------------------------------------------
// Per-optimization microprogram: one loop touching every Table I class.
// ---------------------------------------------------------------------

const STRIDE_BASE: u64 = 0x4000;
const DEREF_BASE: u64 = 0x6000;
const PTR_LINE: u64 = 0x5000;
const ITERS: u64 = 12;

/// A single microprogram whose loop body exercises every optimization
/// class at once: stride-walking loads feeding a dependent dereference
/// (DMP streams + correlation), constant-value loads (value
/// prediction), `mul`/`divu`/`fp` work with trivial and loop-invariant
/// operands (simplification, reuse, subnormal FP), an always-zero ALU
/// result (RFC, operand packing) stored over zeroed memory (silent
/// stores), and a final load of a pointer-dense line (CDP).
fn opt_micro(opts: OptConfig) -> Result<SimStats, SimError> {
    let mut a = Asm::new();
    a.li(Reg::S0, STRIDE_BASE);
    a.li(Reg::S1, 0);
    a.li(Reg::S2, ITERS);
    a.li(Reg::T4, 8);
    a.li(Reg::A1, 0x3FF8_0000_0000_0000); // 1.5_f64
    a.li(Reg::A2, 1); // smallest subnormal f64
    a.label("loop");
    a.ld(Reg::T0, Reg::S0, 0); // stride stream; loads a pointer
    a.ld(Reg::T1, Reg::T0, 0); // dependent deref (always 42)
    a.mul(Reg::T2, Reg::T1, Reg::S1);
    a.divu(Reg::T3, Reg::T2, Reg::T4);
    a.mul(Reg::A4, Reg::T1, Reg::T4); // loop-invariant: reusable
    a.fp(FpOp::Add, Reg::A0, Reg::A1, Reg::A2);
    a.and(Reg::A3, Reg::S1, Reg::ZERO); // trivial ALU, result 0
    a.sd(Reg::A3, Reg::S0, 8); // stores 0 over zeroed memory
    a.addi(Reg::S0, Reg::S0, 64);
    a.addi(Reg::S1, Reg::S1, 1);
    a.bne(Reg::S1, Reg::S2, "loop");
    a.ld(Reg::T5, Reg::ZERO, PTR_LINE as i64); // pointer-dense line
    a.fence();
    a.halt();
    let prog = a.assemble().expect("opt microprogram assembles");
    let mut m = Machine::new(SimConfig::with_opts(opts));
    m.load_program(&prog);
    for i in 0..ITERS {
        m.mem_mut()
            .write_u64(STRIDE_BASE + 64 * i, DEREF_BASE + 8 * i)
            .expect("in memory");
        m.mem_mut()
            .write_u64(DEREF_BASE + 8 * i, 42)
            .expect("in memory");
    }
    for k in 0..8u64 {
        m.mem_mut()
            .write_u64(PTR_LINE + 8 * k, DEREF_BASE + 64 * k)
            .expect("in memory");
    }
    m.run(1_000_000)?;
    Ok(*m.stats())
}

#[test]
fn golden_per_optimization_matrix() {
    let b = OptConfig::baseline();
    let configs: [(&str, OptConfig, &SimStats); 13] = [
        ("OPT_BASELINE", b, &OPT_BASELINE),
        (
            "OPT_SILENT_STORES",
            OptConfig {
                silent_stores: true,
                ..b
            },
            &OPT_SILENT_STORES,
        ),
        (
            "OPT_COMP_SIMPL",
            OptConfig {
                comp_simpl: true,
                fp_subnormal: true,
                ..b
            },
            &OPT_COMP_SIMPL,
        ),
        (
            "OPT_PACKING",
            OptConfig {
                operand_packing: true,
                ..b
            },
            &OPT_PACKING,
        ),
        (
            "OPT_REUSE_VALUES",
            OptConfig {
                comp_reuse: true,
                ..b
            },
            &OPT_REUSE_VALUES,
        ),
        (
            "OPT_REUSE_REGIDS",
            OptConfig {
                comp_reuse: true,
                reuse_key: ReuseKey::RegIds,
                ..b
            },
            &OPT_REUSE_REGIDS,
        ),
        (
            "OPT_VP_LAST_VALUE",
            OptConfig {
                value_pred: true,
                ..b
            },
            &OPT_VP_LAST_VALUE,
        ),
        (
            "OPT_VP_STRIDE",
            OptConfig {
                value_pred: true,
                vp_kind: VpKind::Stride,
                ..b
            },
            &OPT_VP_STRIDE,
        ),
        (
            "OPT_RFC_ZERO_ONE",
            OptConfig {
                rf_compress: true,
                ..b
            },
            &OPT_RFC_ZERO_ONE,
        ),
        (
            "OPT_RFC_ANY",
            OptConfig {
                rf_compress: true,
                rfc_match: RfcMatch::Any,
                ..b
            },
            &OPT_RFC_ANY,
        ),
        ("OPT_DMP", OptConfig::with_dmp(2), &OPT_DMP),
        ("OPT_CDP", OptConfig { cdp: true, ..b }, &OPT_CDP),
        ("OPT_ALL", all_opts(), &OPT_ALL),
    ];
    for (name, opts, want) in configs {
        let got = opt_micro(opts).expect("microprogram completes");
        check_stats(name, &got, want);
    }
}

fn all_opts() -> OptConfig {
    OptConfig {
        silent_stores: true,
        comp_simpl: true,
        fp_subnormal: true,
        operand_packing: true,
        comp_reuse: true,
        value_pred: true,
        rf_compress: true,
        dmp: true,
        cdp: true,
        ..OptConfig::baseline()
    }
}

#[test]
fn golden_microprogram_under_random_faults() {
    let plan = FaultPlan::random(0x5eed, 16, 1..200, STRIDE_BASE..PTR_LINE);
    let mut m = Machine::new(SimConfig::with_opts(all_opts()));
    let mut a = Asm::new();
    a.li(Reg::S0, STRIDE_BASE);
    a.li(Reg::S1, 0);
    a.li(Reg::S2, ITERS);
    a.li(Reg::T4, 8);
    a.label("loop");
    a.ld(Reg::T0, Reg::S0, 0);
    a.ld(Reg::T1, Reg::T0, 0);
    a.mul(Reg::T2, Reg::T1, Reg::S1);
    a.sd(Reg::T2, Reg::S0, 8);
    a.addi(Reg::S0, Reg::S0, 64);
    a.addi(Reg::S1, Reg::S1, 1);
    a.bne(Reg::S1, Reg::S2, "loop");
    a.fence();
    a.halt();
    let prog = a.assemble().expect("faulted microprogram assembles");
    m.load_program(&prog);
    for i in 0..ITERS {
        m.mem_mut()
            .write_u64(STRIDE_BASE + 64 * i, DEREF_BASE + 8 * i)
            .expect("in memory");
    }
    m.inject_faults(plan);
    m.run(1_000_000).expect("disturbed microprogram completes");
    check_stats("OPT_FAULTED", m.stats(), &OPT_FAULTED);
}

// ---------------------------------------------------------------------
// Fig 6: one end-to-end BSAES measurement each way.
// ---------------------------------------------------------------------

#[test]
fn golden_fig6_bsaes_measurements() {
    let victim_key: [u8; 16] = std::array::from_fn(|i| (i * 13 + 7) as u8);
    let attacker_key: [u8; 16] = std::array::from_fn(|i| (i * 31 + 5) as u8);
    let victim_pt: [u8; 16] = std::array::from_fn(|i| (i * 3) as u8);
    let mut atk = BsaesAttack::new(victim_key, attacker_key, victim_pt, 0);
    let truth = atk.true_slice_value();

    let correct = atk
        .try_measure_guess(truth, Some(7919))
        .expect("correct-guess run completes");
    let incorrect = atk
        .try_measure_guess(truth ^ 0x0F0F, Some(7919))
        .expect("incorrect-guess run completes");
    check_str(
        "FIG6_CYCLES",
        &format!("correct={} incorrect={}", correct.cycles, incorrect.cycles),
        FIG6_CYCLES,
    );

    atk.set_fault_plan(Some(FaultPlan::single(200, FaultKind::DroppedCompletion)));
    let err = atk
        .try_measure_guess(truth, None)
        .expect_err("the wedge must surface as a structured error");
    assert!(matches!(err, SimError::Deadlock { .. }), "got {err}");
    check_str("FIG6_DEADLOCK_RENDERING", &err.to_string(), FIG6_DEADLOCK_RENDERING);
}

// ---------------------------------------------------------------------
// Golden values (captured pre-refactor; see module docs to regenerate).
// ---------------------------------------------------------------------

const FIG4_A_STATS: SimStats = SimStats { cycles: 132, committed: 6, branch_squashes: 0, vp_squashes: 0, l1_hits: 1, l2_hits: 0, dram_accesses: 1, rename_stalls_prf: 0, sq_full_stalls: 0, backend_stalls: 0, silent_stores: 1, performed_stores: 0, ss_loads: 1, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const FIG4_A_TIMELINE: &str = "[StoreResolved { cycle: 127, pc: 3, addr: 65536 }, SsLoadIssued { cycle: 127, pc: 3, addr: 65536 }, SsLoadReturned { cycle: 129, pc: 3, silent: true }, StoreAtHead { cycle: 129, pc: 3 }, StoreSilentDequeue { cycle: 129, pc: 3 }]";
const FIG4_B_STATS: SimStats = SimStats { cycles: 134, committed: 6, branch_squashes: 0, vp_squashes: 0, l1_hits: 2, l2_hits: 0, dram_accesses: 1, rename_stalls_prf: 0, sq_full_stalls: 0, backend_stalls: 0, silent_stores: 0, performed_stores: 1, ss_loads: 1, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const FIG4_B_TIMELINE: &str = "[StoreResolved { cycle: 127, pc: 3, addr: 65536 }, SsLoadIssued { cycle: 127, pc: 3, addr: 65536 }, SsLoadReturned { cycle: 129, pc: 3, silent: false }, StoreAtHead { cycle: 129, pc: 3 }, StoreSentToCache { cycle: 129, pc: 3, reason: ValueMismatch }, StoreDequeued { cycle: 131, pc: 3 }]";
const FIG4_C_STATS: SimStats = SimStats { cycles: 252, committed: 28, branch_squashes: 0, vp_squashes: 0, l1_hits: 0, l2_hits: 0, dram_accesses: 25, rename_stalls_prf: 0, sq_full_stalls: 0, backend_stalls: 122, silent_stores: 0, performed_stores: 1, ss_loads: 0, ss_no_port: 1, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const FIG4_C_TIMELINE: &str = "[StoreResolved { cycle: 4, pc: 1, addr: 65536 }, StoreAtHead { cycle: 6, pc: 1 }, StoreSentToCache { cycle: 6, pc: 1, reason: NoLoadPort }, StoreDequeued { cycle: 126, pc: 1 }]";
const FIG4_D_STATS: SimStats = SimStats { cycles: 11, committed: 4, branch_squashes: 0, vp_squashes: 0, l1_hits: 1, l2_hits: 0, dram_accesses: 1, rename_stalls_prf: 0, sq_full_stalls: 0, backend_stalls: 0, silent_stores: 0, performed_stores: 1, ss_loads: 1, ss_no_port: 0, ss_late: 1, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const FIG4_D_TIMELINE: &str = "[StoreResolved { cycle: 4, pc: 1, addr: 65536 }, SsLoadIssued { cycle: 4, pc: 1, addr: 65536 }, StoreAtHead { cycle: 6, pc: 1 }, StoreSentToCache { cycle: 6, pc: 1, reason: SsLoadLate }, StoreDequeued { cycle: 8, pc: 1 }]";
const FIG5_LITTLE_SILENT: SimStats = SimStats { cycles: 632, committed: 26, branch_squashes: 0, vp_squashes: 0, l1_hits: 10, l2_hits: 0, dram_accesses: 17, rename_stalls_prf: 0, sq_full_stalls: 243, backend_stalls: 238, silent_stores: 0, performed_stores: 6, ss_loads: 5, ss_no_port: 1, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const FIG5_LITTLE_LOUD: SimStats = SimStats { cycles: 632, committed: 26, branch_squashes: 0, vp_squashes: 0, l1_hits: 10, l2_hits: 0, dram_accesses: 17, rename_stalls_prf: 0, sq_full_stalls: 243, backend_stalls: 238, silent_stores: 0, performed_stores: 6, ss_loads: 5, ss_no_port: 1, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const FIG5_BIG_SILENT: SimStats = SimStats { cycles: 387, committed: 26, branch_squashes: 0, vp_squashes: 0, l1_hits: 11, l2_hits: 0, dram_accesses: 16, rename_stalls_prf: 0, sq_full_stalls: 0, backend_stalls: 0, silent_stores: 1, performed_stores: 5, ss_loads: 6, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const FIG5_BIG_LOUD: SimStats = SimStats { cycles: 508, committed: 26, branch_squashes: 0, vp_squashes: 0, l1_hits: 11, l2_hits: 0, dram_accesses: 17, rename_stalls_prf: 0, sq_full_stalls: 0, backend_stalls: 0, silent_stores: 0, performed_stores: 6, ss_loads: 6, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const FIG5_DEADLOCK_RENDERING: &str = "pipeline deadlock at cycle 10000: rob=7 (head seq 0 pc 0) sq=0 lq=6 prf=38/96 fetch_pc=7 last_progress=0";
const FIG5_CONTROL_SILENT: SimStats = SimStats { cycles: 149, committed: 16, branch_squashes: 0, vp_squashes: 0, l1_hits: 11, l2_hits: 0, dram_accesses: 6, rename_stalls_prf: 0, sq_full_stalls: 3, backend_stalls: 0, silent_stores: 1, performed_stores: 5, ss_loads: 6, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const FIG5_CONTROL_LOUD: SimStats = SimStats { cycles: 151, committed: 16, branch_squashes: 0, vp_squashes: 0, l1_hits: 12, l2_hits: 0, dram_accesses: 6, rename_stalls_prf: 0, sq_full_stalls: 5, backend_stalls: 0, silent_stores: 0, performed_stores: 6, ss_loads: 6, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const FIG5_CONTENTION_SILENT: SimStats = SimStats { cycles: 390, committed: 26, branch_squashes: 0, vp_squashes: 0, l1_hits: 11, l2_hits: 0, dram_accesses: 16, rename_stalls_prf: 0, sq_full_stalls: 242, backend_stalls: 0, silent_stores: 1, performed_stores: 5, ss_loads: 6, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const FIG5_CONTENTION_LOUD: SimStats = SimStats { cycles: 511, committed: 26, branch_squashes: 0, vp_squashes: 0, l1_hits: 11, l2_hits: 0, dram_accesses: 17, rename_stalls_prf: 0, sq_full_stalls: 362, backend_stalls: 0, silent_stores: 0, performed_stores: 6, ss_loads: 6, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const FIG5_FLUSH_SILENT: SimStats = SimStats { cycles: 268, committed: 18, branch_squashes: 0, vp_squashes: 0, l1_hits: 11, l2_hits: 0, dram_accesses: 7, rename_stalls_prf: 0, sq_full_stalls: 122, backend_stalls: 0, silent_stores: 1, performed_stores: 5, ss_loads: 6, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const FIG5_FLUSH_LOUD: SimStats = SimStats { cycles: 389, committed: 18, branch_squashes: 0, vp_squashes: 0, l1_hits: 11, l2_hits: 0, dram_accesses: 8, rename_stalls_prf: 0, sq_full_stalls: 242, backend_stalls: 0, silent_stores: 0, performed_stores: 6, ss_loads: 6, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const FIG5_NOISY: SimStats = SimStats { cycles: 511, committed: 26, branch_squashes: 0, vp_squashes: 0, l1_hits: 11, l2_hits: 0, dram_accesses: 17, rename_stalls_prf: 0, sq_full_stalls: 362, backend_stalls: 0, silent_stores: 0, performed_stores: 6, ss_loads: 6, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 39 };
const FIG5_FAULTED: SimStats = SimStats { cycles: 416, committed: 26, branch_squashes: 0, vp_squashes: 0, l1_hits: 13, l2_hits: 0, dram_accesses: 17, rename_stalls_prf: 0, sq_full_stalls: 257, backend_stalls: 0, silent_stores: 0, performed_stores: 6, ss_loads: 7, ss_no_port: 4, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 15, noise_events: 0 };
const FIG6_CYCLES: &str = "correct=25284 incorrect=25405";
const FIG6_DEADLOCK_RENDERING: &str = "pipeline deadlock at cycle 10200: rob=64 (head seq 184 pc 184) sq=0 lq=2 prf=96/96 fetch_pc=256 last_progress=200";
const OPT_FAULTED: SimStats = SimStats { cycles: 440, committed: 90, branch_squashes: 2, vp_squashes: 0, l1_hits: 33, l2_hits: 0, dram_accesses: 11, rename_stalls_prf: 0, sq_full_stalls: 312, backend_stalls: 0, silent_stores: 11, performed_stores: 1, ss_loads: 11, ss_no_port: 1, ss_late: 0, trivial_skips: 2, mul_skips: 12, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 30, reuse_hits: 4, reuse_misses: 77, vp_predictions: 8, vp_correct: 6, rfc_shares: 28, dmp_prefetches: 45, dmp_deref_reads: 30, dmp_dropped: 0, cdp_prefetches: 12, faults_injected: 16, noise_events: 0 };
const OPT_BASELINE: SimStats = SimStats { cycles: 544, committed: 141, branch_squashes: 2, vp_squashes: 0, l1_hits: 23, l2_hits: 0, dram_accesses: 16, rename_stalls_prf: 0, sq_full_stalls: 368, backend_stalls: 0, silent_stores: 0, performed_stores: 12, ss_loads: 0, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const OPT_SILENT_STORES: SimStats = SimStats { cycles: 538, committed: 141, branch_squashes: 2, vp_squashes: 0, l1_hits: 23, l2_hits: 0, dram_accesses: 16, rename_stalls_prf: 0, sq_full_stalls: 360, backend_stalls: 0, silent_stores: 12, performed_stores: 0, ss_loads: 12, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const OPT_COMP_SIMPL: SimStats = SimStats { cycles: 516, committed: 141, branch_squashes: 2, vp_squashes: 0, l1_hits: 23, l2_hits: 0, dram_accesses: 16, rename_stalls_prf: 0, sq_full_stalls: 344, backend_stalls: 0, silent_stores: 0, performed_stores: 12, ss_loads: 0, ss_no_port: 0, ss_late: 0, trivial_skips: 13, mul_skips: 2, mul_strength_reductions: 15, div_early_exits: 12, fp_subnormal_slow: 12, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const OPT_PACKING: SimStats = SimStats { cycles: 544, committed: 141, branch_squashes: 2, vp_squashes: 0, l1_hits: 23, l2_hits: 0, dram_accesses: 16, rename_stalls_prf: 0, sq_full_stalls: 369, backend_stalls: 0, silent_stores: 0, performed_stores: 12, ss_loads: 0, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 12, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const OPT_REUSE_VALUES: SimStats = SimStats { cycles: 544, committed: 141, branch_squashes: 2, vp_squashes: 0, l1_hits: 23, l2_hits: 0, dram_accesses: 16, rename_stalls_prf: 0, sq_full_stalls: 368, backend_stalls: 0, silent_stores: 0, performed_stores: 12, ss_loads: 0, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 22, reuse_misses: 62, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const OPT_REUSE_REGIDS: SimStats = SimStats { cycles: 519, committed: 141, branch_squashes: 2, vp_squashes: 0, l1_hits: 23, l2_hits: 0, dram_accesses: 16, rename_stalls_prf: 0, sq_full_stalls: 354, backend_stalls: 0, silent_stores: 0, performed_stores: 12, ss_loads: 0, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 15, reuse_misses: 69, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const OPT_VP_LAST_VALUE: SimStats = SimStats { cycles: 528, committed: 141, branch_squashes: 2, vp_squashes: 0, l1_hits: 23, l2_hits: 0, dram_accesses: 16, rename_stalls_prf: 0, sq_full_stalls: 352, backend_stalls: 0, silent_stores: 0, performed_stores: 12, ss_loads: 0, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 7, vp_correct: 6, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const OPT_VP_STRIDE: SimStats = SimStats { cycles: 536, committed: 141, branch_squashes: 2, vp_squashes: 1, l1_hits: 33, l2_hits: 0, dram_accesses: 16, rename_stalls_prf: 0, sq_full_stalls: 349, backend_stalls: 0, silent_stores: 0, performed_stores: 12, ss_loads: 0, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 23, vp_correct: 16, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const OPT_RFC_ZERO_ONE: SimStats = SimStats { cycles: 544, committed: 141, branch_squashes: 2, vp_squashes: 0, l1_hits: 23, l2_hits: 0, dram_accesses: 16, rename_stalls_prf: 0, sq_full_stalls: 368, backend_stalls: 0, silent_stores: 0, performed_stores: 12, ss_loads: 0, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 17, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const OPT_RFC_ANY: SimStats = SimStats { cycles: 544, committed: 141, branch_squashes: 2, vp_squashes: 0, l1_hits: 23, l2_hits: 0, dram_accesses: 16, rename_stalls_prf: 0, sq_full_stalls: 368, backend_stalls: 0, silent_stores: 0, performed_stores: 12, ss_loads: 0, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 44, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const OPT_DMP: SimStats = SimStats { cycles: 426, committed: 141, branch_squashes: 2, vp_squashes: 0, l1_hits: 28, l2_hits: 0, dram_accesses: 11, rename_stalls_prf: 0, sq_full_stalls: 368, backend_stalls: 0, silent_stores: 0, performed_stores: 12, ss_loads: 0, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 36, dmp_deref_reads: 18, dmp_dropped: 0, cdp_prefetches: 0, faults_injected: 0, noise_events: 0 };
const OPT_CDP: SimStats = SimStats { cycles: 544, committed: 141, branch_squashes: 2, vp_squashes: 0, l1_hits: 23, l2_hits: 0, dram_accesses: 16, rename_stalls_prf: 0, sq_full_stalls: 368, backend_stalls: 0, silent_stores: 0, performed_stores: 12, ss_loads: 0, ss_no_port: 0, ss_late: 0, trivial_skips: 0, mul_skips: 0, mul_strength_reductions: 0, div_early_exits: 0, fp_subnormal_slow: 0, packed_pairs: 0, reuse_hits: 0, reuse_misses: 0, vp_predictions: 0, vp_correct: 0, rfc_shares: 0, dmp_prefetches: 0, dmp_deref_reads: 0, dmp_dropped: 0, cdp_prefetches: 20, faults_injected: 0, noise_events: 0 };
const OPT_ALL: SimStats = SimStats { cycles: 391, committed: 141, branch_squashes: 2, vp_squashes: 0, l1_hits: 24, l2_hits: 0, dram_accesses: 15, rename_stalls_prf: 0, sq_full_stalls: 331, backend_stalls: 0, silent_stores: 12, performed_stores: 0, ss_loads: 12, ss_no_port: 0, ss_late: 0, trivial_skips: 13, mul_skips: 2, mul_strength_reductions: 4, div_early_exits: 12, fp_subnormal_slow: 6, packed_pairs: 12, reuse_hits: 17, reuse_misses: 68, vp_predictions: 7, vp_correct: 6, rfc_shares: 17, dmp_prefetches: 54, dmp_deref_reads: 36, dmp_dropped: 0, cdp_prefetches: 20, faults_injected: 0, noise_events: 0 };
