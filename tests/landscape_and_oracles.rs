//! Integration of the conceptual framework with the measured machine:
//! every Table I "U" cell we implement is backed by a working timing
//! oracle, and every defense closes its leak.

use pandora::attacks::defense::{
    msb_retrofit_vs_packing, sn_keying_vs_reuse, targeted_clearing_vs_silent_stores,
};
use pandora::attacks::stateful::{reuse_equality_cycles, rfc_equality_cycles, vp_equality_cycles};
use pandora::attacks::stateless::{
    early_exit_div_cycles, fp_subnormal_cycles, operand_packing_cycles, zero_skip_mul_cycles,
};
use pandora::core::{DataItem, Mark, OptClass};
use pandora::sim::{ReuseKey, RfcMatch};

#[test]
fn table1_u_cells_are_backed_by_measured_leaks() {
    // CS: operands of int mul (U).
    assert_eq!(
        OptClass::CompSimplification.mark(DataItem::OperandIntMul),
        Mark::NewlyUnsafe
    );
    assert!(zero_skip_mul_cycles(0, 5, true) < zero_skip_mul_cycles(7, 5, true));

    // CS: operands of int div (U' — already unsafe, new function).
    assert_eq!(
        OptClass::CompSimplification.mark(DataItem::OperandIntDiv),
        Mark::DifferentlyUnsafe
    );
    assert!(early_exit_div_cycles(0xff, true) < early_exit_div_cycles(u64::MAX / 5, true));

    // PC: operands of int simple ops (U).
    assert_eq!(
        OptClass::PipelineCompression.mark(DataItem::OperandIntSimple),
        Mark::NewlyUnsafe
    );
    assert!(operand_packing_cycles(3, true, false) < operand_packing_cycles(1 << 20, true, false));

    // CR: operands (U) via the equality oracle.
    assert_eq!(
        OptClass::ComputationReuse.mark(DataItem::OperandIntMul),
        Mark::NewlyUnsafe
    );
    assert!(
        reuse_equality_cycles(5, 5, ReuseKey::Values)
            < reuse_equality_cycles(5, 6, ReuseKey::Values)
    );

    // VP: load data (U).
    assert_eq!(
        OptClass::ValuePrediction.mark(DataItem::DataLoad),
        Mark::NewlyUnsafe
    );
    assert!(vp_equality_cycles(9, 9) < vp_equality_cycles(9, 10));

    // RFC: results (U).
    assert_eq!(
        OptClass::RegFileCompression.mark(DataItem::ResultIntSimple),
        Mark::NewlyUnsafe
    );
    assert!(
        rfc_equality_cycles(9, 9, RfcMatch::ZeroOne) < rfc_equality_cycles(9, 12, RfcMatch::ZeroOne)
    );
}

#[test]
fn fp_operand_leak_is_the_known_subnormal_channel() {
    assert!(fp_subnormal_cycles(1.0f64.to_bits(), true) < fp_subnormal_cycles(1, true));
}

#[test]
fn all_defenses_close_their_leaks() {
    assert!(msb_retrofit_vs_packing().closed(10));
    assert!(sn_keying_vs_reuse().closed(10));
    assert!(targeted_clearing_vs_silent_stores().closed(30));
}

#[test]
fn baseline_is_constant_time_for_every_oracle_workload() {
    assert_eq!(
        zero_skip_mul_cycles(0, 5, false),
        zero_skip_mul_cycles(7, 5, false)
    );
    assert_eq!(
        early_exit_div_cycles(1, false),
        early_exit_div_cycles(u64::MAX, false)
    );
    assert_eq!(
        operand_packing_cycles(1, false, false),
        operand_packing_cycles(u64::MAX, false, false)
    );
}
