//! Differential testing: on any program, the out-of-order pipeline and
//! the in-order functional emulator must produce identical
//! architectural state — registers and memory — no matter which
//! optimizations are enabled. (The paper's whole point is that the
//! optimizations change *timing*, never *results*.)

use pandora::isa::{AluOp, Asm, BranchCond, Program, Reg};
use pandora::sim::{Emulator, Machine, Memory, OptConfig, ReuseKey, RfcMatch, SimConfig};
use proptest::prelude::*;

/// A recipe for one random-but-terminating program: straight-line ALU
/// and memory work inside a counted loop.
#[derive(Debug, Clone)]
struct Recipe {
    seeds: Vec<u64>,
    ops: Vec<(u8, u8, u8, u8)>, // (op selector, rd, rs1, rs2)
    stores: Vec<(u8, u16)>,     // (src reg, offset/8)
    iterations: u8,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (
        prop::collection::vec(any::<u64>(), 4),
        prop::collection::vec((0u8..12, 1u8..8, 1u8..8, 1u8..8), 1..20),
        prop::collection::vec((1u8..8, 0u16..64), 0..6),
        1u8..6,
    )
        .prop_map(|(seeds, ops, stores, iterations)| Recipe {
            seeds,
            ops,
            stores,
            iterations,
        })
}

fn build(r: &Recipe) -> Program {
    let regs = [
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::S0,
        Reg::S1,
        Reg::A0,
        Reg::A1,
        Reg::A2,
    ];
    let alu_ops = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Mul,
        AluOp::Divu,
        AluOp::Remu,
        AluOp::Slt,
        AluOp::Sltu,
    ];
    let mut a = Asm::new();
    for (i, &s) in r.seeds.iter().enumerate() {
        a.li(regs[i], s);
    }
    a.li(Reg::T6, u64::from(r.iterations));
    a.label("loop");
    for &(op, rd, rs1, rs2) in &r.ops {
        a.alu(
            alu_ops[op as usize % alu_ops.len()],
            regs[rd as usize % 8],
            regs[rs1 as usize % 8],
            regs[rs2 as usize % 8],
        );
    }
    for &(src, off) in &r.stores {
        a.sd(regs[src as usize % 8], Reg::ZERO, 0x1000 + 8 * i64::from(off));
        a.ld(regs[src as usize % 8], Reg::ZERO, 0x1000 + 8 * i64::from(off));
    }
    a.addi(Reg::T6, Reg::T6, -1);
    a.branch(BranchCond::Ne, Reg::T6, Reg::ZERO, "loop");
    a.halt();
    a.assemble().expect("generated program assembles")
}

fn all_on() -> OptConfig {
    OptConfig {
        silent_stores: true,
        comp_simpl: true,
        fp_subnormal: true,
        operand_packing: true,
        comp_reuse: true,
        reuse_key: ReuseKey::Values,
        reuse_entries: 16,
        reuse_simple_alu: true,
        value_pred: true,
        vp_confidence: 2,
        vp_kind: pandora::sim::VpKind::Stride,
        rf_compress: true,
        rfc_match: RfcMatch::Any,
        dmp: true,
        dmp_levels: 3,
        dmp_distance: 4,
        dmp_fill: pandora::sim::PrefetchFill::AllLevels,
        cdp: true,
    }
}

fn check(r: &Recipe, opts: OptConfig) {
    let prog = build(r);
    let mut emu = Emulator::new(Memory::new(1 << 16));
    emu.run(&prog, 1_000_000).expect("emulator completes");

    let mut cfg = SimConfig::with_opts(opts);
    cfg.mem_size = 1 << 16;
    let mut m = Machine::new(cfg);
    m.load_program(&prog);
    m.run(10_000_000).expect("pipeline completes");

    for reg in Reg::all() {
        assert_eq!(
            m.reg(reg),
            emu.reg(reg),
            "register {reg} diverged on {r:?}"
        );
    }
    for off in 0..64u64 {
        let addr = 0x1000 + 8 * off;
        assert_eq!(
            m.mem().read_u64(addr).unwrap(),
            emu.mem().read_u64(addr).unwrap(),
            "memory {addr:#x} diverged on {r:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipeline_matches_emulator_on_baseline(r in recipe()) {
        check(&r, OptConfig::baseline());
    }

    #[test]
    fn pipeline_matches_emulator_with_every_optimization_on(r in recipe()) {
        check(&r, all_on());
    }

    #[test]
    fn pipeline_matches_emulator_with_sn_reuse(r in recipe()) {
        let mut opts = all_on();
        opts.reuse_key = ReuseKey::RegIds;
        check(&r, opts);
    }

    #[test]
    fn optimizations_never_change_architectural_results(r in recipe()) {
        // Compare the two machines directly as well, for memory beyond
        // the probed window.
        let prog = build(&r);
        let run = |opts: OptConfig| {
            let mut cfg = SimConfig::with_opts(opts);
            cfg.mem_size = 1 << 16;
            let mut m = Machine::new(cfg);
            m.load_program(&prog);
            m.run(10_000_000).expect("completes");
            let regs: Vec<u64> = Reg::all().map(|x| m.reg(x)).collect();
            let mem = m.mem().read_bytes(0x1000, 512).unwrap().to_vec();
            (regs, mem)
        };
        prop_assert_eq!(run(OptConfig::baseline()), run(all_on()));
    }
}
