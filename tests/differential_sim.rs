//! Differential testing: on any program, the out-of-order pipeline and
//! the in-order functional emulator must produce identical
//! architectural state — registers and memory — no matter which
//! optimizations are enabled. (The paper's whole point is that the
//! optimizations change *timing*, never *results*.)

use pandora::isa::{AluOp, Asm, BranchCond, Program, Reg};
use pandora::sim::{
    traffic_program, DuoMachine, EmuError, Emulator, Machine, Memory, OptConfig, ReuseKey,
    RfcMatch, SimConfig,
};
use proptest::prelude::*;

/// A recipe for one random-but-terminating program: straight-line ALU
/// and memory work inside a counted loop.
#[derive(Debug, Clone)]
struct Recipe {
    seeds: Vec<u64>,
    ops: Vec<(u8, u8, u8, u8)>, // (op selector, rd, rs1, rs2)
    stores: Vec<(u8, u16)>,     // (src reg, offset/8)
    iterations: u8,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (
        prop::collection::vec(any::<u64>(), 4),
        prop::collection::vec((0u8..12, 1u8..8, 1u8..8, 1u8..8), 1..20),
        prop::collection::vec((1u8..8, 0u16..64), 0..6),
        1u8..6,
    )
        .prop_map(|(seeds, ops, stores, iterations)| Recipe {
            seeds,
            ops,
            stores,
            iterations,
        })
}

fn build(r: &Recipe) -> Program {
    let regs = [
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::S0,
        Reg::S1,
        Reg::A0,
        Reg::A1,
        Reg::A2,
    ];
    let alu_ops = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Mul,
        AluOp::Divu,
        AluOp::Remu,
        AluOp::Slt,
        AluOp::Sltu,
    ];
    let mut a = Asm::new();
    for (i, &s) in r.seeds.iter().enumerate() {
        a.li(regs[i], s);
    }
    a.li(Reg::T6, u64::from(r.iterations));
    a.label("loop");
    for &(op, rd, rs1, rs2) in &r.ops {
        a.alu(
            alu_ops[op as usize % alu_ops.len()],
            regs[rd as usize % 8],
            regs[rs1 as usize % 8],
            regs[rs2 as usize % 8],
        );
    }
    for &(src, off) in &r.stores {
        a.sd(regs[src as usize % 8], Reg::ZERO, 0x1000 + 8 * i64::from(off));
        a.ld(regs[src as usize % 8], Reg::ZERO, 0x1000 + 8 * i64::from(off));
    }
    a.addi(Reg::T6, Reg::T6, -1);
    a.branch(BranchCond::Ne, Reg::T6, Reg::ZERO, "loop");
    a.halt();
    a.assemble().expect("generated program assembles")
}

fn all_on() -> OptConfig {
    OptConfig {
        silent_stores: true,
        comp_simpl: true,
        fp_subnormal: true,
        operand_packing: true,
        comp_reuse: true,
        reuse_key: ReuseKey::Values,
        reuse_entries: 16,
        reuse_simple_alu: true,
        value_pred: true,
        vp_confidence: 2,
        vp_kind: pandora::sim::VpKind::Stride,
        rf_compress: true,
        rfc_match: RfcMatch::Any,
        dmp: true,
        dmp_levels: 3,
        dmp_distance: 4,
        dmp_fill: pandora::sim::PrefetchFill::AllLevels,
        cdp: true,
    }
}

fn check(r: &Recipe, opts: OptConfig) {
    let prog = build(r);
    let mut emu = Emulator::new(Memory::new(1 << 16));
    emu.run(&prog, 1_000_000).expect("emulator completes");

    let mut cfg = SimConfig::with_opts(opts);
    cfg.mem_size = 1 << 16;
    let mut m = Machine::new(cfg);
    m.load_program(&prog);
    m.run(10_000_000).expect("pipeline completes");

    for reg in Reg::all() {
        assert_eq!(
            m.reg(reg),
            emu.reg(reg),
            "register {reg} diverged on {r:?}"
        );
    }
    for off in 0..64u64 {
        let addr = 0x1000 + 8 * off;
        assert_eq!(
            m.mem().read_u64(addr).unwrap(),
            emu.mem().read_u64(addr).unwrap(),
            "memory {addr:#x} diverged on {r:?}"
        );
    }
}

/// Asserts one [`DuoMachine`] core's architectural state equals its
/// in-order reference.
fn check_core(name: &str, m: &Machine, emu: &Emulator, context: &dyn std::fmt::Debug) {
    for reg in Reg::all() {
        assert_eq!(
            m.reg(reg),
            emu.reg(reg),
            "core {name} register {reg} diverged on {context:?}"
        );
    }
    for off in 0..64u64 {
        let addr = 0x1000 + 8 * off;
        assert_eq!(
            m.mem().read_u64(addr).unwrap(),
            emu.mem().read_u64(addr).unwrap(),
            "core {name} memory {addr:#x} diverged on {context:?}"
        );
    }
}

/// Runs two recipes on a [`DuoMachine`] — both cores hammer the same
/// addresses, so every load and store rides the shared-L2 path under
/// cross-core interference — and cross-checks each core against its
/// own emulator run. Sharing must perturb timing only, never results.
fn check_duo(ra: &Recipe, rb: &Recipe, opts: OptConfig) {
    let (pa, pb) = (build(ra), build(rb));
    let emulate = |p: &Program| {
        let mut emu = Emulator::new(Memory::new(1 << 16));
        emu.run(p, 1_000_000).expect("emulator completes");
        emu
    };
    let (ea, eb) = (emulate(&pa), emulate(&pb));

    let mut cfg = SimConfig::with_opts(opts);
    cfg.mem_size = 1 << 16;
    let machine = |p: &Program| {
        let mut m = Machine::new(cfg);
        m.load_program(p);
        m
    };
    let mut duo = DuoMachine::new(machine(&pa), machine(&pb));
    duo.run(10_000_000).expect("duo completes");
    check_core("A", duo.core_a(), &ea, &(ra, rb));
    check_core("B", duo.core_b(), &eb, &(ra, rb));
}

#[test]
fn traffic_corunner_matches_emulator_on_both_cores() {
    // The noise subsystem's co-runner traffic generator is itself a
    // legal program: run it on core B against a random-ish workload on
    // core A and cross-check both cores' architectural state.
    let victim = build(&Recipe {
        seeds: vec![3, 7, 0x1000, 0xffff_ffff],
        ops: vec![(0, 1, 2, 3), (7, 2, 1, 1), (8, 3, 2, 4)],
        stores: vec![(1, 0), (2, 5), (3, 9)],
        iterations: 5,
    });
    // The traffic span overlaps the victim's store window, so the
    // interference is real (shared L2 lines), yet results must hold.
    let traffic = traffic_program(0x0D15_EA5E, 0x1000, 0x1000, 40);

    let emulate = |p: &Program| {
        let mut emu = Emulator::new(Memory::new(1 << 16));
        emu.run(p, 1_000_000).expect("emulator completes");
        emu
    };
    let (ev, et) = (emulate(&victim), emulate(&traffic));

    let mut cfg = SimConfig::with_opts(all_on());
    cfg.mem_size = 1 << 16;
    let machine = |p: &Program| {
        let mut m = Machine::new(cfg);
        m.load_program(p);
        m
    };
    let mut duo = DuoMachine::new(machine(&victim), machine(&traffic));
    duo.run(10_000_000).expect("duo completes");
    check_core("A", duo.core_a(), &ev, &"victim vs traffic");
    check_core("B", duo.core_b(), &et, &"victim vs traffic");
    // And the traffic generator's own stores land identically.
    for off in (0..0x1000u64).step_by(64) {
        let addr = 0x1000 + off;
        assert_eq!(
            duo.core_b().mem().read_u64(addr).unwrap(),
            et.mem().read_u64(addr).unwrap(),
            "traffic store at {addr:#x} diverged"
        );
    }
}

/// Builds a two-tier program: a timing-free warm-up prefix, then a
/// measured suffix. Returns `(program, boundary_pc, prefix_rdcycle_pc)`
/// where the last is `Some(pc)` when a `rdcycle` was planted inside the
/// prefix to violate the handoff contract.
fn two_tier_program(rdcycle_in_prefix: bool) -> (Program, usize, Option<usize>) {
    let mut a = Asm::new();
    a.li(Reg::T0, 0);
    a.li(Reg::T1, 40);
    a.label("warm");
    a.add(Reg::T0, Reg::T0, Reg::T1);
    a.sd(Reg::T0, Reg::ZERO, 0x2000);
    a.ld(Reg::T2, Reg::ZERO, 0x2000);
    a.addi(Reg::T1, Reg::T1, -1);
    a.bnez(Reg::T1, "warm");
    let poison = if rdcycle_in_prefix {
        let pc = a.here();
        a.rdcycle(Reg::A0);
        Some(pc)
    } else {
        None
    };
    let boundary = a.here();
    // Suffix: timing measurement is legal on the cycle-accurate side.
    a.rdcycle(Reg::A1);
    a.ld(Reg::T3, Reg::ZERO, 0x2000);
    a.add(Reg::T3, Reg::T3, Reg::T0);
    a.sd(Reg::T3, Reg::ZERO, 0x2008);
    a.fence();
    a.rdcycle(Reg::A2);
    a.sub(Reg::A2, Reg::A2, Reg::A1);
    a.halt();
    (a.assemble().unwrap(), boundary, poison)
}

#[test]
fn fast_forward_rejects_rdcycle_in_prefix() {
    // The emulator's timer counts instructions, the pipeline's counts
    // noise-quantized cycles: a rdcycle inside the fast-forward region
    // would hand the measured suffix a poisoned baseline, so the
    // handoff contract rejects it at the exact pc.
    let (prog, boundary, poison) = two_tier_program(true);
    let err = Machine::fast_forward(SimConfig::default(), &prog, boundary, 1_000_000)
        .err()
        .expect("prefix rdcycle must be rejected");
    assert_eq!(err, EmuError::RdCycleInPrefix { pc: poison.unwrap() });

    // The same program is still legal for a whole-pipeline run (the
    // contract governs only the functional tier)...
    let mut m = Machine::new(SimConfig::default());
    m.load_program(&prog);
    m.run(10_000_000).expect("full pipeline run completes");
    // ...and for a fast-forward whose boundary stops short of it.
    Machine::fast_forward(SimConfig::default(), &prog, poison.unwrap(), 1_000_000)
        .expect("boundary before the rdcycle is fine");
}

#[test]
fn fast_forward_matches_pipeline_and_emulator_architecturally() {
    let (prog, boundary, _) = two_tier_program(false);

    let mut emu = Emulator::new(Memory::new(SimConfig::default().mem_size));
    emu.run(&prog, 1_000_000).expect("emulator completes");

    let mut full = Machine::new(SimConfig::default());
    full.load_program(&prog);
    let full_stats = full.run(10_000_000).expect("full run completes");

    let mut ff = Machine::fast_forward(SimConfig::default(), &prog, boundary, 1_000_000)
        .expect("fast-forward succeeds");
    let ff_stats = ff.run(10_000_000).expect("resumed run completes");

    // Timer-derived registers (A1/A2) are excluded: instruction counts
    // vs cycle counts vs suffix-only cycle counts all legitimately
    // differ. Everything else must agree three ways.
    for reg in Reg::all().filter(|r| !matches!(*r, Reg::A1 | Reg::A2)) {
        assert_eq!(ff.reg(reg), emu.reg(reg), "register {reg} vs emulator");
        assert_eq!(ff.reg(reg), full.reg(reg), "register {reg} vs pipeline");
    }
    for addr in [0x2000u64, 0x2008] {
        assert_eq!(ff.mem().read_u64(addr).unwrap(), emu.mem().read_u64(addr).unwrap());
        assert_eq!(ff.mem().read_u64(addr).unwrap(), full.mem().read_u64(addr).unwrap());
    }
    // The measured suffix observed real (positive) elapsed cycles on
    // both pipeline runs.
    assert!(ff.reg(Reg::A2) > 0, "suffix rdcycle delta is live");
    assert!(full.reg(Reg::A2) > 0);
    // And the fast-forwarded run actually skipped the prefix on the
    // cycle-accurate tier.
    assert!(
        ff_stats.committed < full_stats.committed / 2,
        "prefix must not replay on the pipeline: ff committed {} vs full {}",
        ff_stats.committed,
        full_stats.committed
    );
    assert!(ff_stats.cycles < full_stats.cycles);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipeline_matches_emulator_on_baseline(r in recipe()) {
        check(&r, OptConfig::baseline());
    }

    #[test]
    fn pipeline_matches_emulator_with_every_optimization_on(r in recipe()) {
        check(&r, all_on());
    }

    #[test]
    fn pipeline_matches_emulator_with_sn_reuse(r in recipe()) {
        let mut opts = all_on();
        opts.reuse_key = ReuseKey::RegIds;
        check(&r, opts);
    }

    #[test]
    fn duo_cores_match_emulator_with_shared_l2(ra in recipe(), rb in recipe()) {
        // Both recipes store into the same 0x1000 window, so the
        // shared L2 sees cross-core hits/evictions on the same lines.
        check_duo(&ra, &rb, all_on());
    }

    #[test]
    fn optimizations_never_change_architectural_results(r in recipe()) {
        // Compare the two machines directly as well, for memory beyond
        // the probed window.
        let prog = build(&r);
        let run = |opts: OptConfig| {
            let mut cfg = SimConfig::with_opts(opts);
            cfg.mem_size = 1 << 16;
            let mut m = Machine::new(cfg);
            m.load_program(&prog);
            m.run(10_000_000).expect("completes");
            let regs: Vec<u64> = Reg::all().map(|x| m.reg(x)).collect();
            let mem = m.mem().read_bytes(0x1000, 512).unwrap().to_vec();
            (regs, mem)
        };
        prop_assert_eq!(run(OptConfig::baseline()), run(all_on()));
    }
}
