//! Differential audit of the fleet batch engine (DESIGN.md §13): a
//! fleet member must be *bit-equal* to a lone [`Machine`] — same
//! config, same seed, same program — for every counter in
//! [`SimStats`], regardless of thread count, steal order, or whether
//! the machine was freshly constructed or recycled through
//! [`Machine::reset_to`]. Every sweep driver in the tree (fig5, fig6,
//! E16, the covert/calibration grids) rides on this equivalence: it is
//! what makes "refactor the loop onto the fleet" a pure performance
//! change with byte-identical experiment output.
//!
//! The grid deliberately mixes the shapes the real sweeps use: seed
//! variation, noise intensities (the E16 axis), little/default/big
//! cores (the fig5 ablation axis), and silent-store opts — so machine
//! recycling is forced through both the reset-in-place path
//! (`same_shape`) and the rebuild path (geometry change).

use std::sync::Arc;

use pandora_isa::{Asm, Program, Reg};
use pandora_sim::fleet::{self, DEFAULT_MAX_CYCLES};
use pandora_sim::{
    FleetSpec, Machine, MemberError, MemberSpec, NoiseConfig, OptConfig, SimConfig, SimError,
    SimStats,
};

/// A halting workload with enough memory traffic to exercise the cache
/// hierarchy, the noise hook's replacement pressure, and (under
/// [`OptConfig::with_silent_stores`]) the store-queue machinery: a
/// read-modify-write sweep over `lines` cache lines, twice, so the
/// second pass re-stores values the first pass wrote (silent stores)
/// and revisits lines the sweep may have evicted.
fn sweep_program(lines: u64) -> Program {
    let mut a = Asm::new();
    a.li(Reg::T3, 2); // passes
    a.label("pass");
    a.li(Reg::T0, lines);
    a.li(Reg::T1, 0x2_0000); // base of the swept window
    a.label("loop");
    a.ld(Reg::T2, Reg::T1, 0);
    a.addi(Reg::T2, Reg::T2, 1);
    a.sd(Reg::T2, Reg::T1, 0);
    a.sd(Reg::T2, Reg::T1, 8); // second store, same line: silent on pass 2
    a.addi(Reg::T1, Reg::T1, 64);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "loop");
    a.addi(Reg::T3, Reg::T3, -1);
    a.bnez(Reg::T3, "pass");
    a.halt();
    a.assemble().expect("sweep program assembles")
}

/// The mixed configuration grid: every axis a real sweep varies.
fn mixed_cfgs() -> Vec<SimConfig> {
    let silent = SimConfig::with_opts(OptConfig::with_silent_stores());
    let mut cfgs = vec![
        SimConfig::default(),
        SimConfig { seed: 0xdead_beef, ..SimConfig::default() },
        silent,
        SimConfig { seed: 7, ..silent },
        SimConfig::little_core(),
        SimConfig::big_core(),
    ];
    for intensity in [15u16, 30, 60] {
        let mut noisy = silent;
        noisy.noise = NoiseConfig::at_intensity(intensity, 0x5eed ^ u64::from(intensity));
        cfgs.push(noisy);
    }
    cfgs
}

/// Seeds the swept window so the first pass has deterministic values
/// to read-modify-write.
fn prep(m: &mut Machine) -> Result<(), SimError> {
    for i in 0..64u64 {
        m.mem_mut()
            .write_u64(0x2_0000 + i * 8, i.wrapping_mul(0x9e37_79b9))
            .expect("window in memory");
    }
    Ok(())
}

/// The reference: a lone machine, fresh construction, no fleet — the
/// exact shape every sweep loop had before the fleet refactor.
fn lone_run(cfg: SimConfig, program: &Program) -> SimStats {
    let mut m = Machine::new(cfg);
    m.load_program(program);
    prep(&mut m).expect("prep succeeds");
    m.run(DEFAULT_MAX_CYCLES).expect("lone machine completes")
}

#[test]
fn fleet_members_are_bit_equal_to_lone_machines() {
    let program = Arc::new(sweep_program(48));
    let cfgs = mixed_cfgs();

    let mut spec = FleetSpec::new().with_threads(4);
    for &cfg in &cfgs {
        spec.push(
            MemberSpec::new(cfg, Arc::clone(&program))
                .with_prep(prep),
        );
    }
    let mut fleet = spec.build();
    let outcomes = fleet.run_to_completion();

    assert_eq!(outcomes.len(), cfgs.len());
    for (i, (&cfg, outcome)) in cfgs.iter().zip(&outcomes).enumerate() {
        let fleet_stats = outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("member {i} degraded: {e}"));
        let solo = lone_run(cfg, &program);
        assert_eq!(
            *fleet_stats, solo,
            "member {i} (seed {:#x}, noise evict {}‰): fleet stats diverged from a lone machine",
            cfg.seed, cfg.noise.evict_permille,
        );
    }

    // The reduction side of the contract: merged_stats is exactly the
    // serial Sum over the member outcomes.
    let serial: SimStats = outcomes.iter().map(|o| o.as_ref().unwrap()).sum();
    assert_eq!(fleet.merged_stats(), serial);
}

#[test]
fn trial_grid_is_invariant_to_threads_and_machine_recycling() {
    let program = Arc::new(sweep_program(48));
    let jobs: Vec<MemberSpec> = mixed_cfgs()
        .into_iter()
        .map(|cfg| MemberSpec::new(cfg, Arc::clone(&program)).with_prep(prep))
        .collect();

    // threads = 1 funnels every job through ONE pooled machine, so the
    // mixed grid forces reset_to through both the same-shape reset path
    // and the geometry-rebuild path (little/big cores are interleaved
    // with default-shaped members).
    let pooled_1: Vec<SimStats> = fleet::trial_grid(&jobs, 1, |_, _, stats| stats)
        .into_iter()
        .map(|r| r.expect("job completes"))
        .collect();
    let pooled_4: Vec<SimStats> = fleet::trial_grid(&jobs, 4, |_, _, stats| stats)
        .into_iter()
        .map(|r| r.expect("job completes"))
        .collect();
    let fresh: Vec<SimStats> = jobs
        .iter()
        .map(|j| lone_run(j.cfg, &j.program))
        .collect();

    assert_eq!(pooled_1, fresh, "recycled machines diverged from fresh construction");
    assert_eq!(pooled_1, pooled_4, "thread count changed trial results");
}

/// The warm-fork contract: trials forked from one mid-run checkpoint
/// of a *noisy* machine must be bit-equal to serial replay. The
/// checkpoint is taken deep into the run, so the noise RNG streams are
/// far from their seeds at the boundary — bit-equality therefore
/// proves `restore` resumes the streams at the checkpointed position
/// rather than re-deriving them from config (which `NoiseHook::reset`
/// does, and which would silently decorrelate forked trials from the
/// serial reference).
#[test]
fn forked_trials_are_bit_equal_to_serial_replay_across_threads() {
    let program = Arc::new(sweep_program(48));
    let cfg = SimConfig {
        noise: NoiseConfig::at_intensity(45, 0xfeed_5eed).with_window(0x2_0000, 0x3_0000),
        ..SimConfig::with_opts(OptConfig::with_silent_stores())
    };
    let warm = || {
        let mut m = Machine::new(cfg);
        m.load_program(&program);
        prep(&mut m).expect("prep succeeds");
        m.run_until_committed(400, DEFAULT_MAX_CYCLES)
            .expect("warm prefix completes");
        m
    };
    let warmed = warm();
    assert!(
        warmed.stats().noise_events > 0,
        "the checkpoint must already have consumed noise draws"
    );
    let ck = Arc::new(warmed.snapshot());
    assert!(ck.cycle() > 0, "mid-run checkpoint");

    // Serial replay reference: each trial re-runs the whole prefix,
    // then applies its per-trial delta at the boundary.
    let trial_value = |v: u64| v * 3 + 1;
    let serial: Vec<(SimStats, u64)> = (0..5u64)
        .map(|v| {
            let mut m = warm();
            m.mem_mut().write_u64(0x2_0000, trial_value(v)).unwrap();
            let stats = m.run(DEFAULT_MAX_CYCLES).expect("serial trial completes");
            (stats, m.mem().read_u64(0x2_0000).unwrap())
        })
        .collect();
    assert!(
        serial[0].0.noise_events > warmed.stats().noise_events,
        "noise keeps flowing after the boundary"
    );

    // Forked: every trial restores the shared checkpoint. threads = 1
    // funnels all jobs through ONE pool slot, so each restore lands on
    // the previous trial's dirty machine.
    let jobs: Vec<MemberSpec> = (0..5u64)
        .map(|v| {
            MemberSpec::new(cfg, Arc::clone(&program))
                .with_start(Arc::clone(&ck))
                .with_prep(move |m| {
                    m.mem_mut().write_u64(0x2_0000, trial_value(v)).unwrap();
                    Ok(())
                })
        })
        .collect();
    let run_grid = |threads| -> Vec<(SimStats, u64)> {
        fleet::trial_grid(&jobs, threads, |_, m, stats| {
            (stats, m.mem().read_u64(0x2_0000).unwrap())
        })
        .into_iter()
        .map(|r| r.expect("forked trial completes"))
        .collect()
    };
    let forked_1 = run_grid(1);
    let forked_4 = run_grid(4);
    assert_eq!(
        forked_1, serial,
        "fork-from-checkpoint diverged from serial replay"
    );
    assert_eq!(forked_1, forked_4, "thread count changed forked results");
}

/// The pool-recycling hazard the scan service leans on: a trial that
/// *panics with the machine genuinely mid-step* (in-flight uops, dirty
/// caches, partial memory writes) must leave nothing behind for the
/// next job on the same slot — the machine is discarded and rebuilt,
/// never handed over half-stepped. Likewise a trial abandoned mid-run
/// by a timeout (the machine IS retained there) must recycle through
/// `reset_to` bit-equal to fresh construction. `threads = 1` funnels
/// every job through one slot so the poisoned machine, if kept, would
/// be the very next job's machine.
#[test]
fn pool_discards_panicked_machines_and_heals_half_stepped_ones() {
    let program = Arc::new(sweep_program(48));
    let cfg = SimConfig {
        mem_size: 1 << 18,
        ..SimConfig::with_opts(OptConfig::with_silent_stores())
    };

    // Job 0: half-step the machine, then panic mid-trial.
    let half_step_panic = MemberSpec::new(cfg, Arc::clone(&program)).with_prep(|m| {
        prep(m)?;
        match m.run(200) {
            Err(SimError::Timeout { .. }) => {}
            other => panic!("expected the sweep to be mid-flight at 200 cycles: {other:?}"),
        }
        panic!("injected mid-step panic");
    });
    // Job 1: a timeout abandons the machine mid-run; the pool retains
    // and resets it rather than rebuilding.
    let timing_out = MemberSpec::new(cfg, Arc::clone(&program))
        .with_prep(prep)
        .with_max_cycles(64);
    // Job 2 inherits the slot both degraded jobs went through.
    let good = MemberSpec::new(cfg, Arc::clone(&program)).with_prep(prep);
    let jobs = vec![half_step_panic, timing_out, good];

    let full_image = |m: &mut Machine| -> Vec<u8> {
        m.mem()
            .read_bytes(0, m.config().mem_size)
            .expect("whole memory readable")
            .to_vec()
    };
    let out = fleet::trial_grid(&jobs, 1, |_, m, stats| (stats, full_image(m)));

    assert!(
        matches!(&out[0], Err(MemberError::Panicked(msg)) if msg.contains("injected mid-step")),
        "half-stepped panicking member: {:?}",
        out[0].as_ref().map(|(s, _)| s)
    );
    assert!(
        matches!(out[1], Err(MemberError::Sim(SimError::Timeout { .. }))),
        "timing-out member: {:?}",
        out[1].as_ref().map(|(s, _)| s)
    );
    let (stats, image) = out[2].as_ref().expect("job after the failures completes");

    // Reference: the same trial on a machine nothing ever touched.
    let mut solo = Machine::new(cfg);
    solo.load_program(&program);
    prep(&mut solo).expect("prep succeeds");
    let solo_stats = solo.run(DEFAULT_MAX_CYCLES).expect("lone machine completes");
    assert_eq!(
        *stats, solo_stats,
        "stats after recycling past a panicked + half-stepped slot diverged"
    );
    assert_eq!(
        *image,
        full_image(&mut solo),
        "memory image after recycling past a panicked + half-stepped slot diverged"
    );
}

#[test]
fn one_member_failing_degrades_only_that_member() {
    let program = Arc::new(sweep_program(32));
    let good = MemberSpec::new(SimConfig::default(), Arc::clone(&program)).with_prep(prep);
    let panicking = MemberSpec::new(SimConfig::default(), Arc::clone(&program))
        .with_prep(|_| panic!("injected prep panic"));
    let timing_out = MemberSpec::new(SimConfig::default(), Arc::clone(&program))
        .with_prep(prep)
        .with_max_cycles(16);

    let mut fleet = FleetSpec::new()
        .member(good.clone())
        .member(panicking)
        .member(timing_out)
        .member(good)
        .with_threads(2)
        .build();
    let outcomes = fleet.run_to_completion();

    let healthy = outcomes[0].as_ref().expect("first member completes");
    assert!(
        matches!(&outcomes[1], Err(MemberError::Panicked(msg)) if msg.contains("injected")),
        "panicking member: {:?}",
        outcomes[1]
    );
    assert!(
        matches!(outcomes[2], Err(MemberError::Sim(SimError::Timeout { .. }))),
        "timing-out member: {:?}",
        outcomes[2]
    );
    // The sibling after the failures is untouched — bit-equal to the
    // member that ran before them.
    assert_eq!(outcomes[3].as_ref().expect("last member completes"), healthy);
    // And the degraded members are excluded from the grid reduction.
    let merged = fleet.merged_stats();
    let mut expect = SimStats::default();
    expect.merge(healthy);
    expect.merge(healthy);
    assert_eq!(merged, expect);
}
