//! Cross-crate validation of the BSAES victim: the generated ISA code,
//! the pure-Rust bitsliced implementation, and the byte-wise reference
//! must agree on every block — and the generated code must be
//! constant-time on the baseline machine.

use pandora::crypto::codegen::{emit_encrypt, BsaesLayout};
use pandora::crypto::{aes_ref, bitslice, RoundKeys};
use pandora::isa::Asm;
use pandora::sim::{Machine, SimConfig};

fn run_on_sim(key: [u8; 16], pt: [u8; 16]) -> ([u8; 16], u64) {
    let lay = BsaesLayout::at(0x1_0000);
    let mut a = Asm::new();
    emit_encrypt(&mut a, &lay, |_, _, _| {});
    a.halt();
    let prog = a.assemble().unwrap();
    let rk = RoundKeys::expand(&key);
    let mut m = Machine::new(SimConfig::default());
    m.load_program(&prog);
    m.mem_mut()
        .write_bytes(lay.rk, &BsaesLayout::round_key_bytes(&rk))
        .unwrap();
    m.mem_mut().write_bytes(lay.pt, &pt).unwrap();
    let stats = m.run(5_000_000).unwrap();
    let mut ct = [0u8; 16];
    ct.copy_from_slice(m.mem().read_bytes(lay.ct, 16).unwrap());
    (ct, stats.cycles)
}

#[test]
fn three_implementations_agree_across_random_blocks() {
    for seed in 0..8u8 {
        let key: [u8; 16] = std::array::from_fn(|i| seed.wrapping_mul(37).wrapping_add((i as u8).wrapping_mul(11)));
        let pt: [u8; 16] = std::array::from_fn(|i| seed.wrapping_mul(91).wrapping_add((i as u8).wrapping_mul(29)));
        let rk = RoundKeys::expand(&key);
        let reference = aes_ref::encrypt(&rk, &pt);
        assert_eq!(bitslice::encrypt(&rk, &pt), reference, "bitsliced, seed {seed}");
        let (sim_ct, _) = run_on_sim(key, pt);
        assert_eq!(sim_ct, reference, "simulator, seed {seed}");
    }
}

#[test]
fn generated_code_is_constant_time_on_the_baseline() {
    // Identical cycle counts for wildly different keys and plaintexts:
    // the victim honours the constant-time contract the paper's
    // optimizations then break.
    let mut cycles = std::collections::HashSet::new();
    for seed in 0..5u8 {
        let key = [seed.wrapping_mul(53); 16];
        let pt: [u8; 16] = std::array::from_fn(|i| (i as u8).wrapping_mul(seed));
        let (_, c) = run_on_sim(key, pt);
        cycles.insert(c);
    }
    assert_eq!(cycles.len(), 1, "baseline timing must be data-independent");
}

#[test]
fn attack_preconditions_hold() {
    // The two properties §V-A3 needs: the eight 16-bit slices
    // reconstruct the final-SubBytes state, and the key schedule
    // inverts from the round-10 key.
    let key = *b"sixteen byte key";
    let pt = [0xA5u8; 16];
    let rk = RoundKeys::expand(&key);

    let slices = bitslice::final_subbytes_slices(&rk, &pt);
    let state = bitslice::unbitslice(&slices);
    assert_eq!(state, aes_ref::final_subbytes_state(&rk, &pt));

    let ct = aes_ref::encrypt(&rk, &pt);
    let k10 = aes_ref::round10_key_from_leak(&state, &ct);
    assert_eq!(RoundKeys::from_round10(&k10).master_key(), key);
}

#[test]
fn chosen_plaintext_inversion_is_exact_for_arbitrary_targets() {
    let rk = RoundKeys::expand(b"attacker's  key!");
    for seed in 0..16u8 {
        let target: [u8; 16] = std::array::from_fn(|i| seed.wrapping_mul(19).wrapping_add((i as u8).wrapping_mul(7)));
        let pt = aes_ref::plaintext_for_final_subbytes(&rk, &target);
        assert_eq!(aes_ref::final_subbytes_state(&rk, &pt), target);
    }
}
